#include "md/kernel_ref.hpp"

#include "common/error.hpp"

namespace swgmx::md {

NbKernelStats nb_kernel_ref(const ClusterSystem& cs, const Box& box,
                            const ClusterPairList& list, const NbParams& p,
                            std::span<Vec3f> f_slots, NbEnergies& e) {
  SWGMX_CHECK(f_slots.size() == cs.nslots());
  NbKernelStats stats;
  const int ncl = cs.nclusters();
  double e_lj = 0.0, e_coul = 0.0;

  for (int ci = 0; ci < ncl; ++ci) {
    for (std::int32_t cj : list.row(ci)) {
      ++stats.cluster_pairs;
      const bool self = cj == ci;
      for (int li = 0; li < kClusterSize; ++li) {
        const std::size_t si = static_cast<std::size_t>(ci) * kClusterSize +
                               static_cast<std::size_t>(li);
        const Vec3f xi = cs.pos(si);
        const float qi = cs.charge(si);
        const std::int32_t ti = cs.type_of(si);
        const std::int32_t mi = cs.mol_of(si);
        Vec3f fi{};
        // Half list: intra-cluster pairs once (lj > li). Full list: every
        // ordered pair except the diagonal, so the i-only update still gives
        // each particle its full force.
        const int lj_begin = (self && list.half) ? li + 1 : 0;
        for (int ljn = lj_begin; ljn < kClusterSize; ++ljn) {
          const std::size_t sj = static_cast<std::size_t>(cj) * kClusterSize +
                                 static_cast<std::size_t>(ljn);
          if (self && li == ljn) continue;
          ++stats.pairs_tested;
          if (excluded(mi, cs.mol_of(sj))) continue;
          const Vec3f dr = box.min_image(xi, cs.pos(sj));
          const float r2 = norm2(dr);
          const std::int32_t tj = cs.type_of(sj);
          PairResult pr{};
          if (!pair_force(r2, qi, cs.charge(sj), p.c6[static_cast<std::size_t>(ti * p.ntypes + tj)],
                          p.c12[static_cast<std::size_t>(ti * p.ntypes + tj)], p, pr)) {
            continue;
          }
          ++stats.pairs_in_cutoff;
          const Vec3f fv = pr.fscal * dr;
          fi += fv;
          e_lj += pr.e_lj;
          e_coul += pr.e_coul;
          if (list.half) f_slots[sj] -= fv;  // Newton's 3rd law: the j-update
        }
        f_slots[si] += fi;
      }
    }
  }

  if (!list.half) {
    // Full (RCA) list: every interaction visited twice, so energies are
    // double-counted. Forces are not (only the i side is updated).
    e_lj *= 0.5;
    e_coul *= 0.5;
  }
  e.lj += e_lj;
  e.coul += e_coul;
  return stats;
}

NbEnergies nb_brute_force(const System& sys, const NbParams& p,
                          std::span<Vec3d> f) {
  SWGMX_CHECK(f.size() == sys.size());
  for (auto& fi : f) fi = Vec3d{};
  NbEnergies e;
  const std::size_t n = sys.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (excluded(sys.top.mol_id[i], sys.top.mol_id[j])) continue;
      const Vec3f dr_f = sys.box.min_image(sys.x[i], sys.x[j]);
      const float r2 = norm2(dr_f);
      const int ti = sys.type[i], tj = sys.type[j];
      PairResult pr{};
      if (!pair_force(r2, sys.q[i], sys.q[j],
                      p.c6[static_cast<std::size_t>(ti * p.ntypes + tj)],
                      p.c12[static_cast<std::size_t>(ti * p.ntypes + tj)], p, pr)) {
        continue;
      }
      const Vec3d fv = Vec3d(dr_f) * static_cast<double>(pr.fscal);
      f[i] += fv;
      f[j] -= fv;
      e.lj += pr.e_lj;
      e.coul += pr.e_coul;
    }
  }
  return e;
}

}  // namespace swgmx::md
