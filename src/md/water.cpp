#include "md/water.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "md/units.hpp"

namespace swgmx::md {

namespace {

/// Thermal velocity sigma for one particle: sqrt(kB T / m), nm/ps.
double thermal_sigma(double temp, double mass) {
  return std::sqrt(kBoltz * temp / mass);
}

/// Random unit vector.
Vec3d random_unit(Rng& rng) {
  // Marsaglia: uniform on the sphere.
  double a, b, s;
  do {
    a = rng.uniform(-1.0, 1.0);
    b = rng.uniform(-1.0, 1.0);
    s = a * a + b * b;
  } while (s >= 1.0);
  const double t = 2.0 * std::sqrt(1.0 - s);
  return {a * t, b * t, 1.0 - 2.0 * s};
}

}  // namespace

System make_water_box(const WaterBoxOptions& opt) {
  SWGMX_CHECK(opt.nmol > 0);
  System sys;

  const AtomType types[] = {{Spce::kSigmaO, Spce::kEpsO},  // O
                            {0.0, 0.0}};                   // H (no LJ)
  auto ff = std::make_shared<ForceField>(std::span<const AtomType>(types),
                                         opt.rcut, opt.rlist);
  ff->coulomb = opt.coulomb;
  sys.ff = ff;

  const double volume = static_cast<double>(opt.nmol) / opt.density_per_nm3;
  const double box_len = std::cbrt(volume);
  sys.box.len = {box_len, box_len, box_len};

  const auto m = static_cast<std::size_t>(
      std::ceil(std::cbrt(static_cast<double>(opt.nmol))));
  const double spacing = box_len / static_cast<double>(m);

  sys.resize(opt.nmol * 3);
  Rng rng(opt.seed);

  std::size_t placed = 0;
  for (std::size_t ix = 0; ix < m && placed < opt.nmol; ++ix) {
    for (std::size_t iy = 0; iy < m && placed < opt.nmol; ++iy) {
      for (std::size_t iz = 0; iz < m && placed < opt.nmol; ++iz, ++placed) {
        const std::size_t o = placed * 3;
        const Vec3d base{(static_cast<double>(ix) + 0.5) * spacing,
                         (static_cast<double>(iy) + 0.5) * spacing,
                         (static_cast<double>(iz) + 0.5) * spacing};
        // Random orientation: u along one O-H; w in the HOH plane.
        const Vec3d u = random_unit(rng);
        Vec3d w = random_unit(rng);
        Vec3d perp = w - u * dot(w, u);
        double np = norm(perp);
        while (np < 1e-6) {  // unlucky near-parallel draw
          w = random_unit(rng);
          perp = w - u * dot(w, u);
          np = norm(perp);
        }
        perp *= 1.0 / np;
        // H positions from the O at the SPC/E geometry: both OH bonds at
        // half the HOH angle from the bisector (u).
        const double half = 0.5 * 109.47 * kDeg2Rad;
        const Vec3d h1 = u * std::cos(half) + perp * std::sin(half);
        const Vec3d h2 = u * std::cos(half) - perp * std::sin(half);

        sys.x[o] = Vec3f(base);
        sys.x[o + 1] = Vec3f(base + h1 * Spce::kDOH);
        sys.x[o + 2] = Vec3f(base + h2 * Spce::kDOH);

        const int mol = static_cast<int>(placed);
        for (int k = 0; k < 3; ++k) {
          const std::size_t p = o + static_cast<std::size_t>(k);
          sys.top.mol_id[p] = mol;
          const bool is_o = k == 0;
          sys.type[p] = is_o ? 0 : 1;
          sys.q[p] = static_cast<float>(is_o ? Spce::kQO : Spce::kQH);
          sys.mass[p] = static_cast<float>(is_o ? Spce::kMassO : Spce::kMassH);
          sys.inv_mass[p] = 1.0f / sys.mass[p];
          const double sig = thermal_sigma(opt.temperature, sys.mass[p]);
          sys.v[p] = Vec3f(Vec3d(rng.normal() * sig, rng.normal() * sig,
                                 rng.normal() * sig));
        }
        if (opt.rigid) {
          const auto i0 = static_cast<std::int32_t>(o);
          sys.top.constraints.push_back({i0, i0 + 1, Spce::kDOH});
          sys.top.constraints.push_back({i0, i0 + 2, Spce::kDOH});
          sys.top.constraints.push_back({i0 + 1, i0 + 2, Spce::kDHH});
        } else {
          const auto i0 = static_cast<std::int32_t>(o);
          // Flexible water: harmonic bonds + angle.
          sys.top.bonds.push_back({i0, i0 + 1, Spce::kDOH, 345000.0});
          sys.top.bonds.push_back({i0, i0 + 2, Spce::kDOH, 345000.0});
          sys.top.angles.push_back({i0 + 1, i0, i0 + 2, 109.47 * kDeg2Rad, 383.0});
        }
      }
    }
  }
  SWGMX_CHECK(placed == opt.nmol);
  sys.wrap_positions();
  sys.remove_com_velocity();
  return sys;
}

System make_lj_fluid(const LjFluidOptions& opt) {
  SWGMX_CHECK(opt.n > 0);
  System sys;
  const AtomType types[] = {{opt.sigma, opt.epsilon}};
  auto ff = std::make_shared<ForceField>(std::span<const AtomType>(types),
                                         opt.rcut, opt.rlist);
  ff->coulomb = CoulombMode::None;
  sys.ff = ff;

  const double volume = static_cast<double>(opt.n) / opt.density_per_nm3;
  const double box_len = std::cbrt(volume);
  sys.box.len = {box_len, box_len, box_len};

  const auto m = static_cast<std::size_t>(
      std::ceil(std::cbrt(static_cast<double>(opt.n))));
  const double spacing = box_len / static_cast<double>(m);

  sys.resize(opt.n);
  Rng rng(opt.seed);
  std::size_t placed = 0;
  for (std::size_t ix = 0; ix < m && placed < opt.n; ++ix)
    for (std::size_t iy = 0; iy < m && placed < opt.n; ++iy)
      for (std::size_t iz = 0; iz < m && placed < opt.n; ++iz, ++placed) {
        const Vec3d base{(static_cast<double>(ix) + 0.5) * spacing,
                         (static_cast<double>(iy) + 0.5) * spacing,
                         (static_cast<double>(iz) + 0.5) * spacing};
        const Vec3d jit = random_unit(rng) * (0.05 * spacing);
        sys.x[placed] = Vec3f(base + jit);
        sys.type[placed] = 0;
        sys.q[placed] = 0.0f;
        sys.mass[placed] = static_cast<float>(opt.mass);
        sys.inv_mass[placed] = 1.0f / sys.mass[placed];
        sys.top.mol_id[placed] = static_cast<int>(placed);
        const double sig = thermal_sigma(opt.temperature, opt.mass);
        sys.v[placed] = Vec3f(Vec3d(rng.normal() * sig, rng.normal() * sig,
                                    rng.normal() * sig));
      }
  sys.wrap_positions();
  sys.remove_com_velocity();
  return sys;
}

}  // namespace swgmx::md
