#include "md/cells.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>

#include "common/error.hpp"

namespace swgmx::md {

CellGrid::CellGrid(const Box& box, double min_cell_edge) : box_(box) {
  SWGMX_CHECK(min_cell_edge > 0.0);
  auto dim = [&](double len) {
    return std::max(1, static_cast<int>(std::floor(len / min_cell_edge)));
  };
  nx_ = dim(box.len.x);
  ny_ = dim(box.len.y);
  nz_ = dim(box.len.z);
  inv_edge_ = {nx_ / box.len.x, ny_ / box.len.y, nz_ / box.len.z};
}

int CellGrid::cell_of(const Vec3f& p) const {
  auto clampi = [](int v, int hi) { return std::min(std::max(v, 0), hi - 1); };
  const int ix = clampi(static_cast<int>(p.x * inv_edge_.x), nx_);
  const int iy = clampi(static_cast<int>(p.y * inv_edge_.y), ny_);
  const int iz = clampi(static_cast<int>(p.z * inv_edge_.z), nz_);
  return index(ix, iy, iz);
}

void CellGrid::build(std::span<const Vec3f> points) {
  const int nc = ncells();
  csr_ptr_.assign(static_cast<std::size_t>(nc) + 1, 0);
  csr_ids_.resize(points.size());
  // Counting sort by cell.
  std::vector<std::int32_t> cell(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    cell[i] = cell_of(points[i]);
    ++csr_ptr_[static_cast<std::size_t>(cell[i]) + 1];
  }
  for (int c = 0; c < nc; ++c)
    csr_ptr_[static_cast<std::size_t>(c) + 1] += csr_ptr_[static_cast<std::size_t>(c)];
  std::vector<std::int32_t> cursor(csr_ptr_.begin(), csr_ptr_.end() - 1);
  for (std::size_t i = 0; i < points.size(); ++i) {
    csr_ids_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(cell[i])]++)] =
        static_cast<std::int32_t>(i);
  }
}

std::span<const std::int32_t> CellGrid::cell_members(int c) const {
  const auto lo = static_cast<std::size_t>(csr_ptr_[static_cast<std::size_t>(c)]);
  const auto hi = static_cast<std::size_t>(csr_ptr_[static_cast<std::size_t>(c) + 1]);
  return {csr_ids_.data() + lo, hi - lo};
}

std::vector<int> CellGrid::neighborhood(int c) const {
  const int iz = c % nz_;
  const int iy = (c / nz_) % ny_;
  const int ix = c / (ny_ * nz_);
  std::vector<int> out;
  out.reserve(27);
  auto wrap = [](int v, int n) { return (v % n + n) % n; };
  const int dx_lo = nx_ >= 3 ? -1 : 0, dx_hi = nx_ >= 2 ? 1 : 0;
  const int dy_lo = ny_ >= 3 ? -1 : 0, dy_hi = ny_ >= 2 ? 1 : 0;
  const int dz_lo = nz_ >= 3 ? -1 : 0, dz_hi = nz_ >= 2 ? 1 : 0;
  for (int dx = dx_lo; dx <= dx_hi; ++dx)
    for (int dy = dy_lo; dy <= dy_hi; ++dy)
      for (int dz = dz_lo; dz <= dz_hi; ++dz)
        out.push_back(index(wrap(ix + dx, nx_), wrap(iy + dy, ny_), wrap(iz + dz, nz_)));
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<std::array<int, 3>> CellGrid::sphere_offsets(double reach) const {
  const double ex = box_.len.x / nx_;
  const double ey = box_.len.y / ny_;
  const double ez = box_.len.z / nz_;
  const int kx = std::min(nx_ / 2, static_cast<int>(std::ceil(reach / ex)));
  const int ky = std::min(ny_ / 2, static_cast<int>(std::ceil(reach / ey)));
  const int kz = std::min(nz_ / 2, static_cast<int>(std::ceil(reach / ez)));
  std::vector<std::array<int, 3>> out;
  std::vector<std::uint64_t> seen;  // wrapped-offset dedup keys
  auto min_dist = [](int d, double e) {
    return d == 0 ? 0.0 : (std::abs(d) - 1) * e;
  };
  for (int dx = -kx; dx <= kx; ++dx)
    for (int dy = -ky; dy <= ky; ++dy)
      for (int dz = -kz; dz <= kz; ++dz) {
        const double mx = min_dist(dx, ex);
        const double my = min_dist(dy, ey);
        const double mz = min_dist(dz, ez);
        if (mx * mx + my * my + mz * mz > reach * reach) continue;
        auto wrap = [](int v, int n) { return (v % n + n) % n; };
        const std::uint64_t key =
            (static_cast<std::uint64_t>(wrap(dx, nx_)) << 40) |
            (static_cast<std::uint64_t>(wrap(dy, ny_)) << 20) |
            static_cast<std::uint64_t>(wrap(dz, nz_));
        if (std::find(seen.begin(), seen.end(), key) != seen.end()) continue;
        seen.push_back(key);
        out.push_back({dx, dy, dz});
      }
  return out;
}

std::vector<int> CellGrid::cells_in_morton_order() const {
  auto spread = [](std::uint32_t v) {
    // Spread the low 10 bits of v so there are two zero bits between each.
    std::uint64_t x = v & 0x3FFu;
    x = (x | (x << 16)) & 0x30000FFull;
    x = (x | (x << 8)) & 0x300F00Full;
    x = (x | (x << 4)) & 0x30C30C3ull;
    x = (x | (x << 2)) & 0x9249249ull;
    return x;
  };
  std::vector<std::pair<std::uint64_t, int>> keyed;
  keyed.reserve(static_cast<std::size_t>(ncells()));
  for (int ix = 0; ix < nx_; ++ix)
    for (int iy = 0; iy < ny_; ++iy)
      for (int iz = 0; iz < nz_; ++iz) {
        const std::uint64_t key =
            spread(static_cast<std::uint32_t>(ix)) |
            (spread(static_cast<std::uint32_t>(iy)) << 1) |
            (spread(static_cast<std::uint32_t>(iz)) << 2);
        keyed.emplace_back(key, index(ix, iy, iz));
      }
  std::sort(keyed.begin(), keyed.end());
  std::vector<int> out;
  out.reserve(keyed.size());
  for (const auto& [key, cell] : keyed) out.push_back(cell);
  return out;
}

}  // namespace swgmx::md
