// Nonbonded force-field parameters: per-type-pair Lennard-Jones C6/C12
// tables and the Coulomb treatment.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace swgmx::md {

/// Short-range Coulomb treatment.
enum class CoulombMode : std::uint8_t {
  None,           ///< LJ-only systems
  Cutoff,         ///< plain truncated 1/r
  ReactionField,  ///< RF with eps_rf = infinity
  EwaldShort,     ///< erfc(beta r)/r real-space part of PME/Ewald
};

/// Per-atom-type LJ parameters (sigma/epsilon form, converted to C6/C12).
struct AtomType {
  double sigma;    ///< nm
  double epsilon;  ///< kJ/mol
};

/// Assembled force field: symmetric C6/C12 tables with geometric combination
/// rules, plus the cutoff scheme parameters of Table 3 (rlist/rcut, PME
/// beta, ...).
///
/// One extra "ghost" type (id == ntypes()) with zero C6/C12 is appended
/// automatically; cluster padding slots use it so padded lanes compute to
/// exactly zero force without branches.
class ForceField {
 public:
  ForceField(std::span<const AtomType> types, double rcut, double rlist);

  /// Number of *real* atom types (the ghost type is extra).
  [[nodiscard]] int ntypes() const { return ntypes_; }
  /// Type id of the zero-interaction ghost type used for padding.
  [[nodiscard]] int ghost_type() const { return ntypes_; }
  /// Table dimension, ntypes() + 1.
  [[nodiscard]] int table_dim() const { return ntypes_ + 1; }

  [[nodiscard]] float c6(int ti, int tj) const { return c6_[idx(ti, tj)]; }
  [[nodiscard]] float c12(int ti, int tj) const { return c12_[idx(ti, tj)]; }
  [[nodiscard]] std::span<const float> c6_table() const { return c6_; }
  [[nodiscard]] std::span<const float> c12_table() const { return c12_; }

  [[nodiscard]] double rcut() const { return rcut_; }
  [[nodiscard]] double rlist() const { return rlist_; }

  CoulombMode coulomb = CoulombMode::ReactionField;
  double ewald_beta = 3.12;  ///< nm^-1, tuned so erfc(beta*rcut) ~ 1e-5 at rcut=1.0

 private:
  [[nodiscard]] std::size_t idx(int ti, int tj) const {
    SWGMX_CHECK(ti >= 0 && ti <= ntypes_ && tj >= 0 && tj <= ntypes_);
    const auto dim = static_cast<std::size_t>(ntypes_ + 1);
    return static_cast<std::size_t>(ti) * dim + static_cast<std::size_t>(tj);
  }
  int ntypes_;
  double rcut_, rlist_;
  std::vector<float> c6_, c12_;
};

/// Kernel-ready nonbonded parameters (all float, LDM-resident on a CPE).
struct NbParams {
  float rcut2;             ///< cutoff squared
  CoulombMode coulomb;
  float coulomb_k;         ///< kCoulomb
  float ewald_beta;
  float rf_krf;            ///< reaction-field k coefficient
  float rf_crf;            ///< reaction-field shift
  int ntypes;
  std::span<const float> c6;   ///< ntypes*ntypes
  std::span<const float> c12;
};

/// Derive kernel parameters from a force field.
[[nodiscard]] NbParams make_nb_params(const ForceField& ff);

}  // namespace swgmx::md
