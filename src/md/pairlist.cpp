#include "md/pairlist.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "md/cells.hpp"

namespace swgmx::md {

namespace {

/// Bounding-sphere prefilter: the pair *may* contain a particle pair within
/// rlist only if the centers are within rlist + r_i + r_j.
bool spheres_within_reach(const ClusterSystem& cs, const Box& box, int ci, int cj,
                    float rlist) {
  const float reach = rlist + norm(cs.bb_half(ci)) + norm(cs.bb_half(cj));
  return box.dist2(cs.bb_center(ci), cs.bb_center(cj)) < reach * reach;
}

/// Bounding-box acceptance (GROMACS nbnxn's cluster-pair test): minimum
/// distance between the two axis-aligned boxes under the minimum image is
/// below rlist. Slightly conservative (a pair of boxes can be close without
/// any particle pair being within rlist) but needs no particle data —
/// sphere-only lists would be ~2x longer, exact 16-pair checks would stream
/// every candidate's positions.
bool clusters_within_rlist(const ClusterSystem& cs, const Box& box, int ci,
                           int cj, float rlist) {
  const Vec3f d = box.min_image(cs.bb_center(ci), cs.bb_center(cj));
  const Vec3f hi = cs.bb_half(ci);
  const Vec3f hj = cs.bb_half(cj);
  const float gx = std::max(0.0f, std::abs(d.x) - hi.x - hj.x);
  const float gy = std::max(0.0f, std::abs(d.y) - hi.y - hj.y);
  const float gz = std::max(0.0f, std::abs(d.z) - hi.z - hj.z);
  return gx * gx + gy * gy + gz * gz < rlist * rlist;
}

}  // namespace

PairListStats build_pairlist(const ClusterSystem& cs, const Box& box, float rlist,
                             bool half, ClusterPairList& out) {
  PairListStats stats;
  const int ncl = cs.nclusters();
  out.half = half;
  out.row_ptr.assign(static_cast<std::size_t>(ncl) + 1, 0);
  out.cj.clear();

  // Grid over cluster centers. The cell edge must cover the interaction
  // reach of *typical* clusters; the rare oversized ones (a cluster that
  // straddles a seam of the Morton ordering can have a large bounding
  // radius) are handled by an explicit extra pass so one bad cluster cannot
  // degrade the grid to a full N^2 scan.
  std::vector<float> radii(static_cast<std::size_t>(ncl));
  for (int c = 0; c < ncl; ++c) radii[static_cast<std::size_t>(c)] = cs.radius(c);
  std::vector<float> sorted = radii;
  std::sort(sorted.begin(), sorted.end());
  // Seam-aware cluster packing bounds every radius (~2 cells), so the cap
  // can simply be the maximum: no cluster needs a full-system fallback scan.
  const float r_cap = sorted.back();
  std::vector<std::int32_t> oversized;
  for (int c = 0; c < ncl; ++c) {
    if (radii[static_cast<std::size_t>(c)] > r_cap) {
      oversized.push_back(c);
    }
  }
  // Fine grid + sphere-pruned offset stencil: scanning a ball of cells
  // instead of a coarse 27-cell cube cuts the candidate volume ~4x.
  const double reach_typ =
      static_cast<double>(rlist) + 2.0 * static_cast<double>(r_cap);
  CellGrid grid(box, 0.45);
  std::vector<Vec3f> centers(static_cast<std::size_t>(ncl));
  for (int c = 0; c < ncl; ++c) centers[static_cast<std::size_t>(c)] = box.wrap(cs.center(c));
  grid.build(centers);
  const auto stencil = grid.sphere_offsets(reach_typ);

  std::vector<std::int32_t> row;
  for (int ci = 0; ci < ncl; ++ci) {
    row.clear();
    auto consider = [&](std::int32_t cj) {
      if (half && cj < ci) return;
      ++stats.candidates_tested;
      if (!spheres_within_reach(cs, box, ci, cj, rlist)) return;
      ++stats.sphere_passed;
      if (clusters_within_rlist(cs, box, ci, cj, rlist)) row.push_back(cj);
    };
    if (radii[static_cast<std::size_t>(ci)] > r_cap) {
      // Oversized i-cluster: the stencil cannot bound its reach.
      for (std::int32_t cj = 0; cj < ncl; ++cj) consider(cj);
    } else {
      const int cell = grid.cell_of(centers[static_cast<std::size_t>(ci)]);
      for (const auto& off : stencil) {
        for (std::int32_t cj : grid.cell_members(grid.cell_at_offset(cell, off)))
          consider(cj);
      }
      // Oversized j-clusters may sit outside the stencil.
      for (std::int32_t cj : oversized) consider(cj);
    }
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
    out.cj.insert(out.cj.end(), row.begin(), row.end());
    out.row_ptr[static_cast<std::size_t>(ci) + 1] =
        static_cast<std::int32_t>(out.cj.size());
  }
  stats.pairs_kept = out.cj.size();
  return stats;
}

void build_pairlist_brute(const ClusterSystem& cs, const Box& box, float rlist,
                          bool half, ClusterPairList& out) {
  const int ncl = cs.nclusters();
  out.half = half;
  out.row_ptr.assign(static_cast<std::size_t>(ncl) + 1, 0);
  out.cj.clear();
  for (int ci = 0; ci < ncl; ++ci) {
    for (int cj = half ? ci : 0; cj < ncl; ++cj) {
      const float reach = rlist + cs.radius(ci) + cs.radius(cj);
      if (box.dist2(cs.center(ci), cs.center(cj)) < reach * reach &&
          clusters_within_rlist(cs, box, ci, cj, rlist)) {
        out.cj.push_back(cj);
      }
    }
    out.row_ptr[static_cast<std::size_t>(ci) + 1] =
        static_cast<std::int32_t>(out.cj.size());
  }
}

}  // namespace swgmx::md
