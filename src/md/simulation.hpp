// Single-rank MD driver: the GROMACS main loop of Fig 1 (calculate
// interaction -> update configuration -> output), instrumented with the
// Table 1 phase timers (simulated seconds).
#pragma once

#include <optional>
#include <vector>

#include "md/backends.hpp"
#include "md/bonded.hpp"
#include "md/constraints.hpp"
#include "md/integrator.hpp"
#include "sw/perf.hpp"

namespace swgmx::md {

/// Phase names used by the timers; match Table 1's rows.
namespace phase {
inline constexpr const char* kDomainDecomp = "Domain decomp.";
inline constexpr const char* kNeighborSearch = "Neighbor search";
inline constexpr const char* kForce = "Force";
inline constexpr const char* kWaitCommF = "Wait + comm. F";
inline constexpr const char* kBufferOps = "NB X/F buffer ops";
inline constexpr const char* kUpdate = "Update";
inline constexpr const char* kConstraints = "Constraints";
inline constexpr const char* kCommEnergies = "Comm. energies";
inline constexpr const char* kWriteTraj = "Write traj";
inline constexpr const char* kRest = "Rest";
}  // namespace phase

struct SimOptions {
  IntegratorOptions integ;
  int nstlist = 10;    ///< pair-list rebuild interval (Table 3)
  int nstenergy = 10;  ///< energy sampling interval
  int nstxout = 0;     ///< trajectory output interval (0 = never)
  sw::SwConfig cfg;    ///< architecture model for MPE-side phase costs
  /// Speedup factors for the "Other" optimizations of Fig 10 version 4
  /// (update/constraints/buffer-ops moved to CPEs + 128-bit alignment).
  double update_speedup = 1.0;
  double constraint_speedup = 1.0;
  double buffer_speedup = 1.0;
};

/// One energy sample.
struct EnergySample {
  std::int64_t step;
  double e_lj, e_coul, e_bonded, e_longrange;
  double e_kin, temperature;
  [[nodiscard]] double e_pot() const { return e_lj + e_coul + e_bonded + e_longrange; }
  [[nodiscard]] double e_total() const { return e_pot() + e_kin; }
};

/// The MD loop. Owns the system; borrows the backends (callers own their
/// core groups and can therefore inspect counters afterwards).
class Simulation {
 public:
  Simulation(System sys, SimOptions opt, ShortRangeBackend& sr,
             PairListBackend& pl, LongRangeBackend* lr = nullptr,
             TrajSink* traj = nullptr);

  /// Advance one step. Returns the energies if this step sampled them.
  std::optional<EnergySample> step();

  /// Advance n steps.
  void run(int nsteps);

  /// Compute forces/energies at the current positions without integrating
  /// (used by tests and by step 0 sampling).
  EnergySample measure();

  [[nodiscard]] const System& system() const { return sys_; }
  [[nodiscard]] System& system() { return sys_; }
  [[nodiscard]] const sw::PhaseTimers& timers() const { return timers_; }
  [[nodiscard]] sw::PhaseTimers& timers() { return timers_; }
  [[nodiscard]] const std::vector<EnergySample>& energy_series() const {
    return series_;
  }
  [[nodiscard]] std::int64_t current_step() const { return step_; }
  [[nodiscard]] const SimOptions& options() const { return opt_; }

 private:
  /// Rebuild clusters + pair list ("Neighbor search").
  void neighbor_search();
  /// All force terms; fills last_* energy fields.
  void compute_forces();

  System sys_;
  SimOptions opt_;
  ShortRangeBackend* sr_;
  PairListBackend* pl_;
  LongRangeBackend* lr_;
  TrajSink* traj_;
  Shake shake_;

  std::optional<ClusterSystem> clusters_;
  ClusterPairList list_;
  AlignedVector<Vec3f> f_slots_;

  sw::PhaseTimers timers_;
  std::vector<EnergySample> series_;
  std::int64_t step_ = 0;

  NbEnergies last_nb_;
  BondedEnergies last_bonded_;
  double last_longrange_ = 0.0;
};

}  // namespace swgmx::md
