// Single-rank MD driver: the GROMACS main loop of Fig 1 (calculate
// interaction -> update configuration -> output), instrumented with the
// Table 1 phase timers (simulated seconds).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "md/backends.hpp"
#include "md/bonded.hpp"
#include "md/constraints.hpp"
#include "md/integrator.hpp"
#include "md/taskgraph.hpp"
#include "sw/perf.hpp"
#include "tune/params.hpp"

namespace swgmx::md {

/// Phase names used by the timers; match Table 1's rows.
namespace phase {
inline constexpr const char* kDomainDecomp = "Domain decomp.";
inline constexpr const char* kNeighborSearch = "Neighbor search";
inline constexpr const char* kForce = "Force";
inline constexpr const char* kWaitCommF = "Wait + comm. F";
inline constexpr const char* kBufferOps = "NB X/F buffer ops";
inline constexpr const char* kUpdate = "Update";
inline constexpr const char* kConstraints = "Constraints";
inline constexpr const char* kCommEnergies = "Comm. energies";
inline constexpr const char* kWriteTraj = "Write traj";
inline constexpr const char* kRest = "Rest";
}  // namespace phase

struct SimOptions {
  IntegratorOptions integ;
  int nstlist = tune::active().nstlist;  ///< pair-list rebuild interval (Table 3)
  int nstenergy = 10;  ///< energy sampling interval
  int nstxout = 0;     ///< trajectory output interval (0 = never)
  sw::SwConfig cfg;    ///< architecture model for MPE-side phase costs
  /// Speedup factors for the "Other" optimizations of Fig 10 version 4
  /// (update/constraints/buffer-ops moved to CPEs + 128-bit alignment).
  double update_speedup = 1.0;
  double constraint_speedup = 1.0;
  double buffer_speedup = 1.0;
  // --- asynchronous overlap engine (DESIGN.md §2.10) ---
  /// Schedule each step's force phases as a task graph (concurrent CPE
  /// partitions + hidden communication) instead of the serial sum. Physics
  /// and trajectories are bit-identical either way; only the simulated
  /// clock, timers and trace change. Defaults to SWGMX_OVERLAP.
  bool overlap = sw::overlap_enabled();
  /// CPEs given to short-range when both short-range and PME run on the
  /// mesh. 0 (auto): the planner probes split and unsplit schedules and
  /// commits to the measured winner, auto-balancing the ratio on the
  /// previous step's work. -1: never split — the kernels run back-to-back
  /// on the whole mesh and the overlap comes from hidden communication,
  /// MPE phases and the DMA pipeline. > 0: pin the short-range CPE count.
  int overlap_sr_cpes = 0;
  // --- robustness / self-healing knobs ---
  int checkpoint_every = 0;        ///< steps between on-disk checkpoints (0 = off)
  std::string checkpoint_path;     ///< base .cpt path; a `_prev` sibling is kept
  bool watchdog = false;           ///< run the numeric health guard even fault-free
  double watchdog_max_disp = 0.1;  ///< nm of per-step displacement before rollback
  double watchdog_energy_tol = 1.0;  ///< relative total-energy drift before rollback
  /// First step number of this run (>= 0). A job resumed from a preemption
  /// checkpoint passes the checkpointed step here so its rebuild schedule,
  /// fault keys and energy-sample steps line up with the uninterrupted run.
  std::int64_t start_step = 0;

  /// Range-check the robustness knobs with precise errors (mirrors the
  /// SWGMX_FAULTS spec validation): checkpoint_every >= 0 and a non-empty
  /// checkpoint_path when it is > 0, watchdog_max_disp > 0,
  /// watchdog_energy_tol > 0, start_step >= 0, nstlist/nstenergy >= 0.
  /// Called by the Simulation and ParallelSim constructors.
  void validate() const;
};

/// One energy sample.
struct EnergySample {
  std::int64_t step;
  double e_lj, e_coul, e_bonded, e_longrange;
  double e_kin, temperature;
  [[nodiscard]] double e_pot() const { return e_lj + e_coul + e_bonded + e_longrange; }
  [[nodiscard]] double e_total() const { return e_pot() + e_kin; }
};

/// The MD loop. Owns the system; borrows the backends (callers own their
/// core groups and can therefore inspect counters afterwards).
class Simulation {
 public:
  Simulation(System sys, SimOptions opt, ShortRangeBackend& sr,
             PairListBackend& pl, LongRangeBackend* lr = nullptr,
             TrajSink* traj = nullptr);

  /// Advance one step. Returns the energies if this step sampled them.
  /// Under fault injection (or with SimOptions::watchdog) the step is guarded:
  /// a NaN/inf, runaway-displacement, or energy-drift violation rolls the
  /// state back to the last pair-list-rebuild snapshot and the step count
  /// rewinds, so the caller's run() loop replays it. Replayed steps draw
  /// fresh fault decisions (a generation counter salts the fault keys), so
  /// the loop converges to the fault-free trajectory bit for bit.
  std::optional<EnergySample> step();

  /// Advance n steps.
  void run(int nsteps);

  /// Compute forces/energies at the current positions without integrating
  /// (used by tests and by step 0 sampling).
  EnergySample measure();

  [[nodiscard]] const System& system() const { return sys_; }
  [[nodiscard]] System& system() { return sys_; }
  [[nodiscard]] const sw::PhaseTimers& timers() const { return timers_; }
  [[nodiscard]] sw::PhaseTimers& timers() { return timers_; }
  [[nodiscard]] const std::vector<EnergySample>& energy_series() const {
    return series_;
  }
  [[nodiscard]] std::int64_t current_step() const { return step_; }
  [[nodiscard]] const SimOptions& options() const { return opt_; }
  /// Rollbacks performed so far (numeric watchdog recoveries).
  [[nodiscard]] std::uint64_t rollback_count() const { return rollbacks_; }

 private:
  /// In-memory rollback target. Captured only at pair-list rebuild
  /// boundaries so a replay regenerates the identical list.
  struct Snapshot {
    std::int64_t step = -1;
    AlignedVector<Vec3f> x, v;
  };

  /// Rebuild clusters + pair list ("Neighbor search").
  void neighbor_search();
  /// All force terms; fills last_* energy fields.
  void compute_forces();
  /// Overlap-engine variant: same force phases in the same host execution
  /// order, but modeled as a StepGraph (short-range and PME on concurrent
  /// CPE partitions, MPE phases slotted around them).
  void compute_forces_overlapped();
  void take_snapshot();
  /// Deterministically corrupt a force (FaultKind::NumericKick), modeling an
  /// undetected upstream corruption that escaped the DMA CRC.
  void inject_numeric_fault();
  /// NaN/inf + max-displacement scan of the post-update state.
  [[nodiscard]] bool state_healthy(const AlignedVector<Vec3f>& x_ref) const;
  /// Restore the snapshot and rewind step_ so the caller replays from it.
  void rollback();
  void maybe_write_checkpoint();
  /// Close out one step() for observability: observe the step's simulated
  /// seconds (always) and emit the flight-recorder span (when tracing).
  /// `sample` is null for unsampled and rolled-back steps.
  void finish_step_trace(double step_t0, double timers0,
                         std::int64_t step_at_entry, bool rebuilt,
                         const EnergySample* sample);

  System sys_;
  SimOptions opt_;
  ShortRangeBackend* sr_;
  PairListBackend* pl_;
  LongRangeBackend* lr_;
  TrajSink* traj_;
  Shake shake_;

  std::optional<ClusterSystem> clusters_;
  ClusterPairList list_;
  AlignedVector<Vec3f> f_slots_;

  sw::PhaseTimers timers_;
  std::vector<EnergySample> series_;
  std::int64_t step_ = 0;

  Snapshot snap_;
  std::uint64_t kick_generation_ = 0;  ///< salts fault keys on replay
  std::uint64_t rollbacks_ = 0;
  int consecutive_rollbacks_ = 0;
  std::int64_t last_detect_step_ = -1;
  bool skip_rebuild_ = false;  ///< list already matches the restored state
  double e0_ = 0.0;            ///< first energy sample, drift reference
  bool have_e0_ = false;

  NbEnergies last_nb_;
  BondedEnergies last_bonded_;
  double last_longrange_ = 0.0;

  /// Split/no-split and ratio decisions for the overlap engine's CPE
  /// partitions, probing on measured per-stream seconds.
  PartitionPlanner planner_;
};

}  // namespace swgmx::md
