// Pluggable backends for the phases the paper accelerates. The Simulation
// driver is backend-agnostic; src/core provides the CPE implementations and
// this header provides the MPE reference ones (the paper's "Ori" baseline).
#pragma once

#include <memory>
#include <span>
#include <string>

#include "md/kernel_ref.hpp"
#include "sw/core_group.hpp"

namespace swgmx::md {

/// Computes short-range nonbonded forces for one step.
class ShortRangeBackend {
 public:
  virtual ~ShortRangeBackend() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Which pair-list flavor this backend consumes.
  [[nodiscard]] virtual bool wants_half_list() const { return true; }
  /// Which package layout this backend consumes.
  [[nodiscard]] virtual PackageLayout wants_layout() const {
    return PackageLayout::Interleaved;
  }
  /// Accumulate forces into f_slots (slot-ordered); returns simulated seconds.
  virtual double compute(const ClusterSystem& cs, const Box& box,
                         const ClusterPairList& list, const NbParams& p,
                         std::span<Vec3f> f_slots, NbEnergies& e) = 0;
  /// True when compute() launches CPE kernels, i.e. the overlap engine may
  /// hand this backend a slice of the mesh via set_cpe_partition().
  [[nodiscard]] virtual bool uses_cpes() const { return false; }
  /// Restrict this backend's launches to a mesh slice (overlap engine; an
  /// inactive partition restores the whole mesh). Default: ignore.
  virtual void set_cpe_partition(const sw::CpePartition& /*part*/) {}
};

/// Builds the cluster pair list (every nstlist steps).
class PairListBackend {
 public:
  virtual ~PairListBackend() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Builds the (globally complete) list; returns *critical-path* simulated
  /// seconds when the build is distributed over `nranks` core groups, each
  /// searching only its contiguous share of i-clusters.
  virtual double build(const ClusterSystem& cs, const Box& box, float rlist,
                       bool half, ClusterPairList& out, int nranks = 1) = 0;
  /// True when build() launches CPE kernels (critical-path attribution
  /// classifies the Neighbor search phase by this).
  [[nodiscard]] virtual bool uses_cpes() const { return false; }
};

/// Long-range electrostatics (PME). Implemented in src/pme; interface lives
/// here so md does not depend on pme.
class LongRangeBackend {
 public:
  virtual ~LongRangeBackend() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Adds reciprocal-space + correction forces into sys.f; returns simulated
  /// seconds and writes the reciprocal energy (incl. self/excluded terms).
  virtual double compute(System& sys, double& e_recip) = 0;
  /// See ShortRangeBackend::uses_cpes / set_cpe_partition.
  [[nodiscard]] virtual bool uses_cpes() const { return false; }
  virtual void set_cpe_partition(const sw::CpePartition& /*part*/) {}
};

/// Trajectory sink (implemented in src/io).
class TrajSink {
 public:
  virtual ~TrajSink() = default;
  /// Writes one frame; returns simulated seconds.
  virtual double write_frame(const System& sys, double time_ps) = 0;
};

// ---------------------------------------------------------------------------
// MPE reference backends (the "Ori" row of Fig 8/10): the unported GROMACS
// running on the management core only.
// ---------------------------------------------------------------------------

class MpeShortRange final : public ShortRangeBackend {
 public:
  explicit MpeShortRange(const sw::CoreGroup& cg) : cg_(&cg) {}
  [[nodiscard]] std::string name() const override { return "Ori(MPE)"; }
  double compute(const ClusterSystem& cs, const Box& box,
                 const ClusterPairList& list, const NbParams& p,
                 std::span<Vec3f> f_slots, NbEnergies& e) override;

 private:
  const sw::CoreGroup* cg_;
};

class MpePairList final : public PairListBackend {
 public:
  explicit MpePairList(const sw::CoreGroup& cg) : cg_(&cg) {}
  [[nodiscard]] std::string name() const override { return "MPE list"; }
  double build(const ClusterSystem& cs, const Box& box, float rlist, bool half,
               ClusterPairList& out, int nranks = 1) override;

 private:
  const sw::CoreGroup* cg_;
};

}  // namespace swgmx::md
