#include "net/domain.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace swgmx::net {

namespace {
/// Factor n into three near-equal factors (largest first).
std::array<int, 3> factor3(int n) {
  std::array<int, 3> best{n, 1, 1};
  double best_score = 1e300;
  for (int a = 1; a * a * a <= n * 4; ++a) {
    if (n % a != 0) continue;
    const int rem = n / a;
    for (int b = a; b * b <= rem * 2; ++b) {
      if (rem % b != 0) continue;
      const int c = rem / b;
      // score: surface-to-volume ~ prefer near-cubic
      const double score = 1.0 / a + 1.0 / b + 1.0 / c;
      if (score < best_score) {
        best_score = score;
        best = {c, b, a};  // c >= b >= a
      }
    }
  }
  return best;
}
}  // namespace

DomainDecomposition::DomainDecomposition(const md::Box& box, int nranks)
    : box_(box) {
  rebuild(nranks);
}

void DomainDecomposition::rebuild(int nranks) {
  SWGMX_CHECK(nranks >= 1);
  const auto f = factor3(nranks);
  px_ = f[0];
  py_ = f[1];
  pz_ = f[2];
  SWGMX_CHECK(px_ * py_ * pz_ == nranks);
}

int DomainDecomposition::rank_of(const Vec3f& pos) const {
  const Vec3f w = box_.wrap(pos);
  auto cell = [](float x, double len, int n) {
    const int c = static_cast<int>(static_cast<double>(x) / len * n);
    return std::min(std::max(c, 0), n - 1);
  };
  const int ix = cell(w.x, box_.len.x, px_);
  const int iy = cell(w.y, box_.len.y, py_);
  const int iz = cell(w.z, box_.len.z, pz_);
  return (ix * py_ + iy) * pz_ + iz;
}

double DomainDecomposition::halo_fraction(double halo_width) const {
  const double lx = box_.len.x / px_;
  const double ly = box_.len.y / py_;
  const double lz = box_.len.z / pz_;
  // Interior fraction of the cell after shaving `halo_width` from each
  // face that has a neighbor (periodic: every face does when p > 1).
  auto interior = [&](double l, int p) {
    if (p == 1) return 1.0;
    return std::max(0.0, (l - 2.0 * halo_width) / l);
  };
  const double inner = interior(lx, px_) * interior(ly, py_) * interior(lz, pz_);
  return 1.0 - inner;
}

int DomainDecomposition::halo_neighbors() const {
  const int nx = px_ > 2 ? 3 : px_;
  const int ny = py_ > 2 ? 3 : py_;
  const int nz = pz_ > 2 ? 3 : pz_;
  return nx * ny * nz - 1;
}

int DomainDecomposition::halo_pulses() const {
  int pulses = 0;
  for (int p : {px_, py_, pz_}) {
    if (p > 1) pulses += 2;
  }
  return pulses;
}

std::vector<std::size_t> assign_counts(const DomainDecomposition& dd,
                                       std::span<const Vec3f> positions) {
  std::vector<std::size_t> counts(static_cast<std::size_t>(dd.nranks()), 0);
  for (const auto& p : positions) {
    ++counts[static_cast<std::size_t>(dd.rank_of(p))];
  }
  return counts;
}

}  // namespace swgmx::net
