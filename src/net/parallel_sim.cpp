#include "net/parallel_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "io/checkpoint.hpp"
#include "md/cost.hpp"
#include "md/taskgraph.hpp"
#include "obs/critpath.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sw/fault.hpp"

namespace swgmx::net {

namespace {
/// Phase charge + critical-path attribution in one call (see the md
/// counterpart in simulation.cpp): network/barrier classification here is
/// what makes the report's network share equal the benches' comm share.
void charge_phase(sw::PhaseTimers& timers, const std::string& ph,
                  double seconds, int resource, bool barrier = false) {
  timers.add(ph, seconds);
  obs::CritPathCollector::global().add_serial(resource, ph, seconds, barrier);
}
}  // namespace

using md::phase::kBufferOps;
using md::phase::kCommEnergies;
using md::phase::kConstraints;
using md::phase::kDomainDecomp;
using md::phase::kForce;
using md::phase::kNeighborSearch;
using md::phase::kUpdate;
using md::phase::kWaitCommF;
using md::phase::kWriteTraj;

ParallelSim::ParallelSim(md::System sys, ParallelOptions opt,
                         md::ShortRangeBackend& sr, md::PairListBackend& pl,
                         md::LongRangeBackend* lr, md::TrajSink* traj)
    : sys_(std::move(sys)),
      opt_(opt),
      sr_(&sr),
      pl_(&pl),
      lr_(lr),
      traj_(traj),
      dd_(sys_.box, opt.nranks) {
  SWGMX_CHECK(opt_.nranks >= 1);
  opt_.sim.validate();
  step_ = opt_.sim.start_step;
  if (opt_.rdma) {
    transport_ = std::make_unique<RdmaSimTransport>();
    using_rdma_ = true;
  } else {
    transport_ = std::make_unique<MpiSimTransport>();
  }
  // Rank world: compute ranks [0, nranks) plus hot spares on top. The fault
  // plan's spare_ranks key raises the budget so chaos specs are
  // self-contained.
  sw::FaultInjector& inj = sw::FaultInjector::global();
  int spares = std::max(0, opt_.spare_ranks);
  if (inj.enabled()) {
    spares = std::max(spares, inj.plan().rates().spare_ranks);
  }
  world_size_ = opt_.nranks + spares;
  active_.resize(static_cast<std::size_t>(opt_.nranks));
  std::iota(active_.begin(), active_.end(), 0);
  spares_free_.resize(static_cast<std::size_t>(spares));
  std::iota(spares_free_.begin(), spares_free_.end(), opt_.nranks);
  neighbor_search();
}

double ParallelSim::mpe_secs(double ops, double mem) const {
  const auto& cfg = opt_.sim.cfg;
  return cfg.seconds(ops * cfg.mpe_op_penalty +
                     mem * cfg.mpe_miss_rate * cfg.mpe_miss_latency_cycles);
}

void ParallelSim::fall_back_to_mpi() {
  transport_ = std::make_unique<MpiSimTransport>();
  using_rdma_ = false;
  sw::FaultInjector::global().record_transport_fallback();
}

double ParallelSim::faulted_cost(double base_s) {
  sw::FaultInjector& inj = sw::FaultInjector::global();
  double s = base_s;
  if (!inj.enabled()) return s;
  const sw::FaultPlan& plan = inj.plan();
  const sw::RetryPolicy& pol = inj.policy();
  const auto step = static_cast<std::uint64_t>(step_);
  // Ranks are simulated sequentially, so this ordinal is a deterministic
  // per-call key regardless of the host pool size.
  const auto ord = msg_ordinal_++;
  constexpr int kFrom = 0x51;  // synthetic endpoint ids for modeled traffic
  constexpr int kTo = 0x52;
  int attempt = 0;
  while (plan.msg_drop(step, kFrom, kTo, ord, attempt)) {
    // Lost on the wire: ack timeout (growing exponentially with the
    // attempt), then the whole exchange is re-paid.
    const double penalty =
        pol.timeout_factor_at(attempt) *
            transport_->message_seconds(sw::kMsgAckBytes) +
        base_s;
    s += penalty;
    inj.record_msg_drop();
    inj.record_msg_retransmit(penalty);
    ++drops_;
    ++attempt;
    if (attempt > pol.max_msg_retries) {
      // RDMA is lossy here by assumption; MPI retransmits below us. Degrade
      // instead of dying — or give up if we already did.
      SWGMX_CHECK_MSG(using_rdma_,
                      "message retransmit budget exhausted on "
                          << transport_->name() << " at step " << step_);
      fall_back_to_mpi();
      break;
    }
  }
  if (using_rdma_ && drops_ >= static_cast<std::uint64_t>(std::max(
                                   1, opt_.rdma_fallback_drops))) {
    fall_back_to_mpi();
  }
  if (plan.msg_delay(step, kFrom, kTo, ord)) {
    const double extra = sw::kMsgDelaySpike * s;
    s += extra;
    inj.record_msg_delay(extra);
  }
  return s;
}

double ParallelSim::comm_seconds(std::size_t bytes) {
  return faulted_cost(transport_->message_seconds(bytes));
}

void ParallelSim::trace_rank_tracks() {
  obs::TraceSession& tr = obs::TraceSession::global();
  if (!tr.enabled()) return;
  for (int w : active_) {
    tr.set_process_name(obs::rank_pid(w), "rank " + std::to_string(w));
    tr.set_thread_name(obs::rank_pid(w), 0, "MPE");
  }
  for (int w : spares_free_) {
    tr.set_process_name(obs::rank_pid(w), "spare " + std::to_string(w));
    tr.set_thread_name(obs::rank_pid(w), 0, "MPE");
  }
}

void ParallelSim::trace_rank_exchange(const char* name, double seconds,
                                      bool gather_to_rank0) {
  obs::TraceSession& tr = obs::TraceSession::global();
  if (!tr.enabled()) return;
  trace_rank_exchange_at(name, tr.now_ns(), seconds, gather_to_rank0);
  tr.advance_to_ns(tr.now_ns() + seconds * 1e9);
}

void ParallelSim::trace_rank_exchange_at(const char* name, double t0_ns,
                                         double seconds, bool gather_to_rank0) {
  obs::TraceSession& tr = obs::TraceSession::global();
  if (!tr.enabled()) return;
  const int R = nactive();
  const double t0 = t0_ns;
  const double t1 = t0 + seconds * 1e9;
  std::ostringstream args;
  args << "{\"transport\":\"" << obs::json_escape(transport_->name())
       << "\",\"seconds\":" << obs::json_number(seconds) << "}";
  for (int r = 0; r < R; ++r) {
    tr.complete(obs::rank_pid(active_[static_cast<std::size_t>(r)]), 0, name,
                t0, t1 - t0, args.str());
  }
  // Flow arrows: send at the span start, delivery at the span end. Ranks
  // run concurrently in simulated time, so all flows share [t0, t1].
  for (int r = 0; r < R; ++r) {
    int to;
    if (gather_to_rank0) {
      if (r == 0) continue;
      to = 0;
    } else {
      if (R < 2) break;
      to = (r + 1) % R;
    }
    const std::uint64_t id = tr.next_flow_id();
    tr.flow_start(obs::rank_pid(active_[static_cast<std::size_t>(r)]), 0, name,
                  t0, id);
    tr.flow_end(obs::rank_pid(active_[static_cast<std::size_t>(to)]), 0, name,
                t1, id);
  }
}

void ParallelSim::finish_step_trace(double step_t0, std::int64_t step_at_entry,
                                    bool rebuilt) {
  obs::CritPathCollector::global().end_step();
  obs::TraceSession& tr = obs::TraceSession::global();
  if (!tr.enabled()) return;
  std::ostringstream args;
  args << "{\"step\":" << step_at_entry
       << ",\"rebuild\":" << (rebuilt ? "true" : "false") << "}";
  for (int w : active_) {
    tr.complete(obs::rank_pid(w), 0, "step", step_t0, tr.now_ns() - step_t0,
                args.str());
  }
}

void ParallelSim::neighbor_search() {
  const int R = nactive();

  // "Domain decomp.": reassign particles to ranks and ship the migrants.
  const double n = static_cast<double>(sys_.size());
  double dd_s = mpe_secs(n * 10.0, n * 2.0) / R;
  if (R > 1) {
    // Roughly the halo-shell particles migrate or need re-registration.
    const double migrants =
        n / R * dd_.halo_fraction(0.1);  // one-step drift shell
    dd_s += comm_seconds(
        static_cast<std::size_t>(std::max(1.0, migrants * 32.0)));
  }
  charge_phase(timers_, kDomainDecomp, dd_s, md::kResMpe);

  clusters_.emplace(sys_, sr_->wants_layout());
  f_slots_.assign(clusters_->nslots(), Vec3f{});
  const double secs =
      pl_->build(*clusters_, sys_.box, static_cast<float>(sys_.ff->rlist()),
                 sr_->wants_half_list(), list_, R);

  // Rank shares from the true spatial decomposition of i-clusters (indices
  // here are decomposition slots; active_ maps a slot to its world id).
  const int ncl = clusters_->nclusters();
  std::vector<double> pair_share(static_cast<std::size_t>(R), 0.0);
  std::vector<double> cl_share(static_cast<std::size_t>(R), 0.0);
  double total_pairs = 0.0;
  for (int ci = 0; ci < ncl; ++ci) {
    const int r = dd_.rank_of(clusters_->center(ci));
    const auto row = list_.row(ci);
    pair_share[static_cast<std::size_t>(r)] += static_cast<double>(row.size());
    cl_share[static_cast<std::size_t>(r)] += 1.0;
    total_pairs += static_cast<double>(row.size());
  }
  max_pair_share_ = 0.0;
  max_cluster_share_ = 0.0;
  pair_fraction_.assign(static_cast<std::size_t>(R), 1.0 / R);
  for (int r = 0; r < R; ++r) {
    if (total_pairs > 0.0) {
      const double frac = pair_share[static_cast<std::size_t>(r)] / total_pairs;
      pair_fraction_[static_cast<std::size_t>(r)] = frac;
      max_pair_share_ = std::max(max_pair_share_, frac);
    }
    max_cluster_share_ = std::max(
        max_cluster_share_, cl_share[static_cast<std::size_t>(r)] / std::max(1, ncl));
  }
  if (max_pair_share_ == 0.0) max_pair_share_ = 1.0;
  if (max_cluster_share_ == 0.0) max_cluster_share_ = 1.0;

  // The backend already reports the critical-path (worst-rank) build time.
  charge_phase(timers_, kNeighborSearch, secs,
               pl_->uses_cpes() ? md::kResCpeA : md::kResMpe);
  obs::TraceSession& tr = obs::TraceSession::global();
  if (tr.enabled()) {
    trace_rank_tracks();
    const double t0 = tr.now_ns();
    for (int r = 0; r < R; ++r) {
      const int pid = obs::rank_pid(active_[static_cast<std::size_t>(r)]);
      tr.complete(pid, 0, kDomainDecomp, t0, dd_s * 1e9);
      tr.complete(pid, 0, kNeighborSearch, t0 + dd_s * 1e9, secs * 1e9);
    }
    tr.advance_to_ns(t0 + (dd_s + secs) * 1e9);
  }
}

bool ParallelSim::check_rank_faults() {
  sw::FaultInjector& inj = sw::FaultInjector::global();
  const sw::FaultPlan& plan = inj.plan();
  const sw::FaultRates& rates = plan.rates();
  if (rates.rank_crash <= 0.0 && rates.rank_hang <= 0.0) return false;

  const sw::RetryPolicy& pol = inj.policy();
  const auto step = static_cast<std::uint64_t>(step_);
  // Heartbeats ride every step. They are tiny and concurrent across ranks,
  // so the critical path pays one ack-sized message latency.
  if (nactive() > 1) {
    charge_phase(timers_, md::phase::kRest,
                 transport_->message_seconds(sw::kMsgAckBytes), md::kResMpe);
  }

  // Collect this step's whole-rank failures. Decisions are keyed on
  // (step, world id) alone — an evicted rank is never probed again, so a
  // replayed step sees identical (all-false) decisions for the survivors
  // and the recovery loop converges.
  std::vector<std::pair<int, bool>> failed;  // (world id, is_hang)
  for (int w : active_) {
    if (plan.rank_crash(step, w)) {
      failed.emplace_back(w, false);
    } else if (plan.rank_hang(step, w)) {
      failed.emplace_back(w, true);
    }
  }
  if (failed.empty()) return false;
  SWGMX_CHECK_MSG(failed.size() < active_.size(),
                  "rank-failure recovery impossible: all "
                      << active_.size() << " ranks failed at step " << step_);

  obs::TraceSession& tr = obs::TraceSession::global();
  obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
  const double gossip_s =
      static_cast<double>(pol.gossip_confirmations) *
      transport_->message_seconds(sw::kMsgAckBytes);

  // Failure detection. A crashed rank stops heartbeating and is suspected
  // after one missed interval; a hung rank still holds its slot and is only
  // declared dead after the (longer) silence timeout. Either suspicion
  // needs `gossip_confirmations` neighbor confirmations before eviction.
  // Concurrent failures are detected concurrently: charge the slowest.
  double detect_s = 0.0;
  for (const auto& [w, hang] : failed) {
    const double base =
        hang ? pol.heartbeat_timeout_s : pol.heartbeat_interval_s;
    detect_s = std::max(detect_s, base + gossip_s);
    if (hang) {
      inj.record_rank_hang();
      mx.counter_add("ft/rank_hangs");
    } else {
      inj.record_rank_crash();
      mx.counter_add("ft/rank_crashes");
    }
    if (tr.enabled()) {
      std::ostringstream args;
      args << "{\"step\":" << step_ << ",\"rank\":" << w << "}";
      tr.instant(obs::rank_pid(w), 0, hang ? "rank_hang" : "rank_crash",
                 tr.now_ns(), args.str());
    }
  }
  charge_phase(timers_, md::phase::kRest, detect_s, md::kResMpe);
  inj.record_detection(detect_s);
  mx.counter_add("ft/detection_seconds", detect_s);

  // Eviction, promoting hot spares first: a spare adopts the dead rank's
  // decomposition slot, so the grid survives intact and only the state
  // migration is paid. Without a spare the survivor set shrinks.
  const int r_old = nactive();
  for (const auto& [w, hang] : failed) {
    (void)hang;
    const auto it = std::find(active_.begin(), active_.end(), w);
    evicted_.push_back(w);
    inj.record_rank_eviction();
    mx.counter_add("ft/ranks_evicted");
    if (tr.enabled()) {
      std::ostringstream args;
      args << "{\"step\":" << step_ << ",\"rank\":" << w << "}";
      tr.instant(obs::rank_pid(w), 0, "rank_evicted", tr.now_ns(),
                 args.str());
    }
    if (!spares_free_.empty()) {
      const int s = spares_free_.front();
      spares_free_.erase(spares_free_.begin());
      *it = s;
      ++spares_promoted_;
      inj.record_spare_promotion();
      mx.counter_add("ft/spares_promoted");
      if (tr.enabled()) {
        std::ostringstream args;
        args << "{\"step\":" << step_ << ",\"replaces\":" << w << "}";
        tr.instant(obs::rank_pid(s), 0, "spare_promoted", tr.now_ns(),
                   args.str());
      }
    } else {
      active_.erase(it);
    }
  }
  const int r_new = nactive();

  // Elastic re-decomposition + state migration: each failure's domain is
  // re-shipped — to its promoted spare, or redistributed over the shrunken
  // grid — and the survivors commit the new epoch with an all-reduce (the
  // same two-phase agreement the coordinated checkpoint uses).
  const double n = static_cast<double>(sys_.size());
  double redecomp_s =
      static_cast<double>(failed.size()) *
      comm_seconds(static_cast<std::size_t>(std::max(1.0, n / r_old * 24.0)));
  if (r_new > 1) {
    redecomp_s += faulted_cost(allreduce_seconds(*transport_, 64, r_new));
  }
  if (r_new != r_old) dd_.rebuild(r_new);
  charge_phase(timers_, kDomainDecomp, redecomp_s, md::kResMpe);
  inj.record_redecomposition(redecomp_s);
  mx.counter_add("ft/redecomp_seconds", redecomp_s);
  mx.counter_add("ft/redecompositions");
  if (tr.enabled()) {
    const auto dims = dd_.dims();
    std::ostringstream args;
    args << "{\"step\":" << step_ << ",\"active\":" << r_new
         << ",\"grid\":[" << dims[0] << "," << dims[1] << "," << dims[2]
         << "],\"spares_left\":" << spares_free_.size() << "}";
    tr.instant(obs::rank_pid(active_.front()), 0, "redecomposition",
               tr.now_ns(), args.str());
  }

  // Roll back to the coordinated snapshot and replay. Physics is computed
  // globally, so the replayed trajectory is bit-identical to a fault-free
  // run — eviction only changes the modeled time. The pair list must match
  // the restored positions *and* the survivor grid: rebuild it when the
  // grid shrank (a promoted spare inherits the old grid, nothing changes).
  rollback();
  if (r_new != r_old) neighbor_search();
  return true;
}

void ParallelSim::step() {
  const int R = nactive();
  const double n = static_cast<double>(sys_.size());

  sw::FaultInjector& inj = sw::FaultInjector::global();
  const bool faults = inj.enabled();
  const bool guard = faults || opt_.sim.watchdog;
  if (faults) inj.set_step(step_);

  obs::TraceSession& tr = obs::TraceSession::global();
  trace_rank_tracks();
  const double step_t0 = tr.now_ns();
  const std::int64_t step_at_entry = step_;

  const bool rebuild_step =
      step_ > 0 && opt_.sim.nstlist > 0 && step_ % opt_.sim.nstlist == 0;
  if (rebuild_step && !skip_rebuild_) neighbor_search();
  skip_rebuild_ = false;
  if (guard && (snap_.step != step_) && (snap_.step < 0 || rebuild_step)) {
    take_snapshot();
  }

  // Whole-rank failures are detected (heartbeats + gossip) and recovered
  // (evict, re-decompose, roll back) before the step's physics: a handled
  // failure rewinds to the snapshot and the run loop re-enters.
  if (faults && check_rank_faults()) {
    finish_step_trace(step_t0, step_at_entry, rebuild_step);
    return;
  }

  md::NbEnergies nb_e;
  md::BondedEnergies bonded_e;
  double e_long = 0.0;
  if (opt_.sim.overlap) {
    compute_forces_overlapped(R, n, nb_e, bonded_e, e_long);
  } else {
  // Position halo exchange before the force computation (staged pulses:
  // 2 per decomposed dimension, corners forwarded — GROMACS DD style).
  if (R > 1) {
    const double halo_particles =
        n / R * dd_.halo_fraction(sys_.ff->rlist());
    const int nb = dd_.halo_pulses();
    const auto bytes = static_cast<std::size_t>(
        std::max(1.0, halo_particles * 1.5 * 12.0 / std::max(1, nb)));
    const double halo_s = static_cast<double>(nb) * comm_seconds(bytes);
    charge_phase(timers_, kWaitCommF, halo_s, md::kResNet);
    trace_rank_exchange("halo_x", halo_s, false);
  }

  // Forces (functionally global; timed per rank).
  sys_.clear_forces();
  clusters_->update_positions(sys_);
  std::fill(f_slots_.begin(), f_slots_.end(), Vec3f{});
  const md::NbParams params = make_nb_params(*sys_.ff);
  const double t_force0 = tr.now_ns();
  const double force_global =
      sr_->compute(*clusters_, sys_.box, list_, params, f_slots_, nb_e);
  if (tr.enabled()) {
    // Per-rank Force spans sized by each rank's true pair share; the shared
    // kernel launches inside sr_->compute already advanced the clock.
    for (int r = 0; r < R; ++r) {
      const double share = pair_fraction_[static_cast<std::size_t>(r)];
      std::ostringstream fargs;
      fargs << "{\"pair_fraction\":" << obs::json_number(share) << "}";
      tr.complete(obs::rank_pid(active_[static_cast<std::size_t>(r)]), 0,
                  kForce, t_force0, share * force_global * 1e9, fargs.str());
    }
  }
  // "Force" carries the average rank's work; the extra time of the most
  // loaded rank shows up as *waiting inside the energy reduction* on every
  // other rank, which is exactly how GROMACS' profiler attributes it (and
  // why Table 1's Case 2 charges 18.7% to "Comm. energies").
  charge_phase(timers_, kForce, force_global / R,
               sr_->uses_cpes() ? md::kResCpeA : md::kResMpe);
  if (R > 1) {
    // Dynamic load balancing recovers roughly half of the raw imbalance
    // (GROMACS' DLB shifts domain boundaries toward the slow ranks).
    charge_phase(timers_, kCommEnergies,
                 0.5 * force_global * std::max(0.0, max_pair_share_ - 1.0 / R),
                 md::kResNet, /*barrier=*/true);
  }

  clusters_->scatter_forces(f_slots_, sys_);
  charge_phase(timers_, kBufferOps, mpe_secs(n * 8.0, n * 2.0) / R,
               md::kResMpe);

  bonded_e = md::compute_bonded(sys_);

  if (lr_ != nullptr) {
    const double pme_s = lr_->compute(sys_, e_long);
    charge_phase(timers_, kForce, pme_s / R,
                 lr_->uses_cpes() ? md::kResCpeA : md::kResMpe);
    if (R > 1) {
      // Distributed 3-D FFT: two transpose all-to-alls per transform pair.
      const auto grid_bytes_per_pair = static_cast<std::size_t>(std::max(
          1.0, 16.0 * 64.0 * 64.0 * 64.0 / (static_cast<double>(R) * R)));
      const double fft_comm_s = faulted_cost(
          2.0 * alltoall_seconds(*transport_, grid_bytes_per_pair, R));
      charge_phase(timers_, kWaitCommF, fft_comm_s, md::kResNet);
      trace_rank_exchange("fft_alltoall", fft_comm_s, false);
    }
  }

  // Force halo: send halo particles' forces back to their owners (same
  // staged pulses in reverse).
  if (R > 1) {
    const double halo_particles = n / R * dd_.halo_fraction(sys_.ff->rlist());
    const int nb = dd_.halo_pulses();
    const auto bytes = static_cast<std::size_t>(
        std::max(1.0, halo_particles * 1.5 * 12.0 / std::max(1, nb)));
    const double halo_s = static_cast<double>(nb) * comm_seconds(bytes);
    charge_phase(timers_, kWaitCommF, halo_s, md::kResNet);
    trace_rank_exchange("halo_f", halo_s, false);
  }
  }  // !opt_.sim.overlap

  if (faults) inject_numeric_fault();

  // Update + constraints, parallel over ranks.
  const AlignedVector<Vec3f> x_ref(sys_.x.begin(), sys_.x.end());
  md::leapfrog_step(sys_, opt_.sim.integ);
  md::apply_thermostat(sys_, opt_.sim.integ);
  charge_phase(timers_, kUpdate,
               mpe_secs(n * md::kUpdateOpsPerParticle, n * 2.0) / R,
               md::kResMpe);

  if (guard) {
    charge_phase(timers_, md::phase::kRest, mpe_secs(n * 6.0, n * 2.0) / R,
                 md::kResMpe);
    if (!state_healthy(x_ref)) {
      rollback();
      finish_step_trace(step_t0, step_at_entry, rebuild_step);
      return;
    }
  }

  if (!sys_.top.constraints.empty()) {
    shake_.apply(sys_, x_ref, opt_.sim.integ.dt);
    const double ops = static_cast<double>(sys_.top.constraints.size()) *
                       md::Shake::kSettleOpsPerConstraint;
    charge_phase(timers_, kConstraints, mpe_secs(ops, ops * 0.2) / R,
                 md::kResMpe);
  }

  // "Comm. energies": the per-step global reduction of energies/virial,
  // inflated by synchronization skew — the 18.7% row of Table 1's Case 2.
  if (R > 1) {
    const double e_comm_s = opt_.energy_comm_skew *
                            faulted_cost(allreduce_seconds(*transport_, 64, R));
    charge_phase(timers_, kCommEnergies, e_comm_s, md::kResNet,
                 /*barrier=*/true);
    trace_rank_exchange(kCommEnergies, e_comm_s, true);
  }

  ++step_;
  if (consecutive_rollbacks_ > 0 && step_ > last_detect_step_) {
    consecutive_rollbacks_ = 0;
  }

  if (opt_.sim.nstenergy > 0 && step_ % opt_.sim.nstenergy == 0) {
    md::EnergySample s{};
    s.step = step_;
    s.e_lj = nb_e.lj;
    s.e_coul = nb_e.coul;
    s.e_bonded = bonded_e.total();
    s.e_longrange = e_long;
    s.e_kin = sys_.kinetic_energy();
    s.temperature = sys_.temperature();
    series_.push_back(s);
  }

  if (traj_ != nullptr && opt_.sim.nstxout > 0 && step_ % opt_.sim.nstxout == 0) {
    // Trajectory gathered and written by rank 0: full cost on the critical
    // path, plus the gather itself.
    double gather_s = 0.0;
    if (R > 1) {
      gather_s = faulted_cost(
          static_cast<double>(R - 1) *
          transport_->message_seconds(
              static_cast<std::size_t>(std::max(1.0, n / R * 12.0))));
    }
    charge_phase(timers_, kWriteTraj,
                 gather_s +
                     traj_->write_frame(
                         sys_, static_cast<double>(step_) * opt_.sim.integ.dt),
                 md::kResMpe);
  }
  maybe_write_checkpoint();
  finish_step_trace(step_t0, step_at_entry, rebuild_step);
}

void ParallelSim::compute_forces_overlapped(int R, double n,
                                            md::NbEnergies& nb_e,
                                            md::BondedEnergies& bonded_e,
                                            double& e_long) {
  obs::TraceSession& tr = obs::TraceSession::global();
  md::StepGraph g(tr.now_ns() / 1e9);

  // CPE mesh partitioning (same policy as the single-rank engine): split
  // only when both backends launch CPE kernels, probing split vs unsplit
  // schedules in auto mode and committing to the measured winner.
  const bool sr_cpe = sr_->uses_cpes();
  const bool lr_cpe = lr_ != nullptr && lr_->uses_cpes();
  const int ncpe = opt_.sim.cfg.cpe_count;
  const int plan_cpes = sr_cpe && lr_cpe && opt_.sim.overlap_sr_cpes >= 0
                            ? planner_.plan(ncpe, opt_.sim.overlap_sr_cpes)
                            : 0;
  const bool split = plan_cpes > 0;
  const int sr_cpes = split ? plan_cpes : ncpe;
  if (split) {
    sr_->set_cpe_partition({0, sr_cpes, 0, "sr"});
    lr_->set_cpe_partition({sr_cpes, ncpe - sr_cpes, 1, "pme"});
  } else {
    if (sr_cpe) sr_->set_cpe_partition({});
    if (lr_cpe) lr_->set_cpe_partition({});
  }
  // Without a split, both CPE backends run (serially) on the whole mesh:
  // they must share one graph resource or the mesh would be double-charged.
  const int res_sr = sr_cpe ? md::kResCpeA : md::kResMpe;
  const int res_lr =
      lr_cpe ? (split ? md::kResCpeB : md::kResCpeA) : md::kResMpe;

  // Interconnect nodes and their serial-model durations, for the
  // hidden-communication metric.
  std::vector<int> net_nodes;

  // Position halo, posted early: the local (interior) force work proceeds
  // while the halo shell is in flight, so this node overlaps the force node
  // instead of preceding it.
  if (R > 1) {
    const double halo_particles =
        n / R * dd_.halo_fraction(sys_.ff->rlist());
    const int nb = dd_.halo_pulses();
    const auto bytes = static_cast<std::size_t>(
        std::max(1.0, halo_particles * 1.5 * 12.0 / std::max(1, nb)));
    const double halo_s = static_cast<double>(nb) * comm_seconds(bytes);
    trace_rank_exchange_at("halo_x", g.ready_at(md::kResNet) * 1e9, halo_s,
                           false);
    net_nodes.push_back(g.add(kWaitCommF, md::kResNet, halo_s, {}, 0));
  }

  // Forces (functionally global; timed per rank — the node carries the
  // average rank's share, exactly what the serial model charges to Force).
  sys_.clear_forces();
  clusters_->update_positions(sys_);
  std::fill(f_slots_.begin(), f_slots_.end(), Vec3f{});
  const md::NbParams params = make_nb_params(*sys_.ff);
  tr.seek_ns(g.ready_at(res_sr) * 1e9);
  if (res_sr != md::kResMpe) {
    tr.set_thread_name(obs::kPidSim, obs::stream_tid(0), "stream sr");
    tr.set_mpe_redirect(obs::stream_tid(0));
  }
  const double t_force0 = tr.now_ns();
  const double force_global =
      sr_->compute(*clusters_, sys_.box, list_, params, f_slots_, nb_e);
  tr.set_mpe_redirect(-1);
  if (tr.enabled()) {
    for (int r = 0; r < R; ++r) {
      const double share = pair_fraction_[static_cast<std::size_t>(r)];
      std::ostringstream fargs;
      fargs << "{\"pair_fraction\":" << obs::json_number(share) << "}";
      tr.complete(obs::rank_pid(active_[static_cast<std::size_t>(r)]), 0,
                  kForce, t_force0, share * force_global * 1e9, fargs.str());
    }
  }
  const int n_force = g.add(kForce, res_sr, force_global / R, {}, 2);
  if (R > 1) {
    // DLB residual imbalance: a serial charge outside the graph, same as
    // the legacy model (it is wait time, not schedulable work).
    charge_phase(timers_, kCommEnergies,
                 0.5 * force_global * std::max(0.0, max_pair_share_ - 1.0 / R),
                 md::kResNet, /*barrier=*/true);
  }

  // Force scatter needs the short-range forces; bonded is independent but
  // executes in the serial host order (both add into sys_.f).
  tr.seek_ns(g.ready_at(md::kResMpe, {n_force}) * 1e9);
  clusters_->scatter_forces(f_slots_, sys_);
  g.add(kBufferOps, md::kResMpe, mpe_secs(n * 8.0, n * 2.0) / R, {n_force}, 1);

  bonded_e = md::compute_bonded(sys_);

  // PME on its own CPE partition; the FFT transpose all-to-alls are posted
  // to the interconnect as soon as the position halo drains.
  int n_pme = -1;
  double pme_rank_s = 0.0;
  if (lr_ != nullptr) {
    tr.seek_ns(g.ready_at(res_lr) * 1e9);
    if (res_lr != md::kResMpe) {
      tr.set_thread_name(obs::kPidSim, obs::stream_tid(1), "stream pme");
      tr.set_mpe_redirect(obs::stream_tid(1));
    }
    const double pme_s = lr_->compute(sys_, e_long);
    tr.set_mpe_redirect(-1);
    pme_rank_s = pme_s / R;
    n_pme = g.add(kForce, res_lr, pme_rank_s, {}, 2);
    if (R > 1) {
      const auto grid_bytes_per_pair = static_cast<std::size_t>(std::max(
          1.0, 16.0 * 64.0 * 64.0 * 64.0 / (static_cast<double>(R) * R)));
      const double fft_comm_s = faulted_cost(
          2.0 * alltoall_seconds(*transport_, grid_bytes_per_pair, R));
      trace_rank_exchange_at("fft_alltoall", g.ready_at(md::kResNet) * 1e9,
                             fft_comm_s, false);
      net_nodes.push_back(g.add(kWaitCommF, md::kResNet, fft_comm_s, {}, 0));
    }
  }

  // Force halo: the one communication that depends on the force results, so
  // only its tail past the compute is ever exposed.
  if (R > 1) {
    const double halo_particles = n / R * dd_.halo_fraction(sys_.ff->rlist());
    const int nb = dd_.halo_pulses();
    const auto bytes = static_cast<std::size_t>(
        std::max(1.0, halo_particles * 1.5 * 12.0 / std::max(1, nb)));
    const double halo_s = static_cast<double>(nb) * comm_seconds(bytes);
    std::vector<int> deps{n_force};
    if (n_pme >= 0) deps.push_back(n_pme);
    trace_rank_exchange_at("halo_f", g.ready_at(md::kResNet, deps) * 1e9,
                           halo_s, false);
    net_nodes.push_back(g.add(kWaitCommF, md::kResNet, halo_s, deps, 0));
  }

  // Close the section: timers get the exposed-time attribution (summing to
  // the overlapped makespan), the clock lands at the section end.
  tr.seek_ns(g.end_seconds() * 1e9);
  g.charge(timers_);
  obs::CritPathCollector::global().observe_graph(g.spans(), g.makespan());

  obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
  if (g.hidden_seconds() > 0.0) {
    mx.counter_add("overlap/hidden_seconds", g.hidden_seconds());
  }
  const std::vector<double> ex = g.exposed();
  double hidden_comm = 0.0;
  for (const int id : net_nodes) {
    hidden_comm += g.finish_of(id) - g.start_of(id) -
                   ex[static_cast<std::size_t>(id)];
  }
  if (hidden_comm > 0.0) {
    mx.counter_add("overlap/hidden_comm_seconds", hidden_comm);
  }
  if (split && n_pme >= 0) {
    const double d_sr = g.finish_of(n_force) - g.start_of(n_force);
    const double d_pme = g.finish_of(n_pme) - g.start_of(n_pme);
    mx.counter_add("overlap/partition_idle_seconds",
                   std::abs(g.finish_of(n_force) - g.finish_of(n_pme)));
    if (d_sr > 0.0 && d_pme > 0.0) {
      mx.gauge_set("overlap/partition_imbalance",
                   std::max(d_sr, d_pme) / std::min(d_sr, d_pme));
    }
  }

  // Feed the planner with this step's per-stream work so the next step's
  // split decision and balance track the measurements.
  if (sr_cpe && lr_cpe) {
    planner_.observe(split, force_global / R, split ? sr_cpes : ncpe,
                     pme_rank_s, split ? ncpe - sr_cpes : ncpe);
  }
}

void ParallelSim::take_snapshot() {
  snap_.step = step_;
  snap_.x.assign(sys_.x.begin(), sys_.x.end());
  snap_.v.assign(sys_.v.begin(), sys_.v.end());
}

void ParallelSim::inject_numeric_fault() {
  sw::FaultInjector& inj = sw::FaultInjector::global();
  const sw::FaultPlan& plan = inj.plan();
  const auto step = static_cast<std::uint64_t>(step_);
  if (!plan.numeric_kick(step, 1, kick_generation_)) return;
  const std::uint64_t d =
      plan.draw(sw::FaultKind::NumericKick, step, 0x4B1CDull, kick_generation_, 1);
  const auto i = static_cast<std::size_t>(d % sys_.size());
  const float bad = ((d >> 60) & 1ull) != 0
                        ? std::numeric_limits<float>::quiet_NaN()
                        : 1e12f;
  sys_.f[i] = Vec3f{bad, bad, bad};
  inj.record_numeric_kick();
  obs::TraceSession& tr = obs::TraceSession::global();
  if (tr.enabled()) {
    std::ostringstream args;
    args << "{\"step\":" << step_ << ",\"particle\":" << i << "}";
    tr.instant(obs::rank_pid(active_.front()), 0, "numeric_kick", tr.now_ns(),
               args.str());
  }
}

bool ParallelSim::state_healthy(const AlignedVector<Vec3f>& x_ref) const {
  const double max_d2 =
      opt_.sim.watchdog_max_disp * opt_.sim.watchdog_max_disp;
  for (std::size_t i = 0; i < sys_.size(); ++i) {
    const Vec3f& x = sys_.x[i];
    const Vec3f& v = sys_.v[i];
    if (!std::isfinite(x.x) || !std::isfinite(x.y) || !std::isfinite(x.z) ||
        !std::isfinite(v.x) || !std::isfinite(v.y) || !std::isfinite(v.z)) {
      return false;
    }
    if (static_cast<double>(norm2(x - x_ref[i])) > max_d2) return false;
  }
  return true;
}

void ParallelSim::rollback() {
  SWGMX_CHECK_MSG(snap_.step >= 0,
                  "health violation at step " << step_
                                              << " with no snapshot to roll back to");
  last_detect_step_ = step_;
  ++consecutive_rollbacks_;
  SWGMX_CHECK_MSG(
      consecutive_rollbacks_ <= sw::kMaxConsecutiveRollbacks,
      "self-healing gave up: " << consecutive_rollbacks_
                               << " consecutive rollbacks to step " << snap_.step);
  const auto replayed = static_cast<std::uint64_t>(step_ - snap_.step) + 1;
  std::copy(snap_.x.begin(), snap_.x.end(), sys_.x.begin());
  std::copy(snap_.v.begin(), snap_.v.end(), sys_.v.begin());
  sys_.clear_forces();
  step_ = snap_.step;
  while (!series_.empty() && series_.back().step > step_) series_.pop_back();
  // The decomposition and pair list date from exactly the snapshot step.
  skip_rebuild_ = true;
  ++kick_generation_;
  ++rollbacks_;
  sw::FaultInjector::global().record_rollback(replayed);
  obs::TraceSession& tr = obs::TraceSession::global();
  if (tr.enabled()) {
    std::ostringstream args;
    args << "{\"detected_at\":" << last_detect_step_ << ",\"to_step\":" << step_
         << ",\"replayed\":" << replayed << "}";
    tr.instant(obs::rank_pid(active_.front()), 0, "rollback", tr.now_ns(),
               args.str());
  }
}

void ParallelSim::maybe_write_checkpoint() {
  if (opt_.sim.checkpoint_every <= 0 || opt_.sim.checkpoint_path.empty()) return;
  if (step_ % opt_.sim.checkpoint_every != 0) return;
  const int R = nactive();
  const double n = static_cast<double>(sys_.size());
  // Rank 0 gathers the state and writes; the gather rides the transport.
  double gather_s = 0.0;
  if (R > 1) {
    gather_s = static_cast<double>(R - 1) *
               transport_->message_seconds(static_cast<std::size_t>(
                   std::max(1.0, n / R * 24.0)));
  }
  // Coordinated v2 checkpoint: the survivor layout plus a two-phase commit
  // marker, so a restart (or tools/cpt_dump.py) sees exactly which ranks
  // were alive when the state was captured.
  io::RankLayout layout;
  const auto dims = dd_.dims();
  layout.world = static_cast<std::int32_t>(world_size_);
  layout.active = static_cast<std::int32_t>(R);
  layout.px = dims[0];
  layout.py = dims[1];
  layout.pz = dims[2];
  layout.spares_promoted = static_cast<std::int32_t>(spares_promoted_);
  layout.evicted.assign(evicted_.begin(), evicted_.end());
  io::write_checkpoint_coordinated_rotating(opt_.sim.checkpoint_path, sys_,
                                            step_, layout);
  charge_phase(timers_, kWriteTraj, gather_s + mpe_secs(n * 8.0, n * 4.0),
               md::kResMpe);
  sw::FaultInjector::global().record_checkpoint();
}

void ParallelSim::run(int nsteps) {
  // While-loop: rollbacks rewind step_, and replays must still reach the
  // target step.
  const std::int64_t target = step_ + nsteps;
  while (step_ < target) step();
}

}  // namespace swgmx::net
