#include "net/transport.hpp"

#include <cmath>
#include <cstring>

#include "common/error.hpp"
#include "sw/fault.hpp"

namespace swgmx::net {

double MpiSimTransport::message_seconds(std::size_t bytes) const {
  const double b = static_cast<double>(bytes);
  return p_.latency_s + b / p_.wire_bw +
         static_cast<double>(p_.copies) * b / p_.copy_bw + b * p_.pack_s_per_byte;
}

double RdmaSimTransport::message_seconds(std::size_t bytes) const {
  return p_.latency_s + static_cast<double>(bytes) / p_.wire_bw;
}

double allreduce_seconds(const Transport& t, std::size_t bytes, int nranks) {
  if (nranks <= 1) return 0.0;
  const double rounds = std::ceil(std::log2(static_cast<double>(nranks)));
  // reduce + broadcast phases.
  return 2.0 * rounds * t.message_seconds(bytes);
}

double alltoall_seconds(const Transport& t, std::size_t bytes_per_pair,
                        int nranks) {
  if (nranks <= 1) return 0.0;
  // Pairwise exchange: nranks-1 rounds, each round sends/receives in parallel.
  return static_cast<double>(nranks - 1) * t.message_seconds(bytes_per_pair);
}

LoopbackNetwork::LoopbackNetwork(int nranks, std::shared_ptr<Transport> transport)
    : nranks_(nranks),
      transport_(std::move(transport)),
      boxes_(static_cast<std::size_t>(nranks)),
      next_seq_(static_cast<std::size_t>(nranks),
                std::vector<std::uint64_t>(static_cast<std::size_t>(nranks), 0)),
      last_seen_(static_cast<std::size_t>(nranks),
                 std::vector<std::uint64_t>(static_cast<std::size_t>(nranks), 0)) {
  SWGMX_CHECK(nranks > 0);
  SWGMX_CHECK(transport_ != nullptr);
}

void LoopbackNetwork::send(int from, int to, std::vector<std::uint8_t> payload) {
  SWGMX_CHECK(from >= 0 && from < nranks_ && to >= 0 && to < nranks_);
  const std::uint64_t seq =
      ++next_seq_[static_cast<std::size_t>(from)][static_cast<std::size_t>(to)];

  std::vector<std::uint8_t> frame(kHeaderBytes + payload.size());
  const auto from32 = static_cast<std::uint32_t>(from);
  std::memcpy(frame.data(), &from32, sizeof(from32));
  std::memcpy(frame.data() + sizeof(from32), &seq, sizeof(seq));
  std::memcpy(frame.data() + kHeaderBytes, payload.data(), payload.size());

  double s = transport_->message_seconds(frame.size());
  bool duplicate = false;
  sw::FaultInjector& inj = sw::FaultInjector::global();
  if (inj.enabled()) {
    const sw::FaultPlan& plan = inj.plan();
    const sw::RetryPolicy& pol = inj.policy();
    const std::uint64_t step = inj.step();
    int attempt = 0;
    while (plan.msg_drop(step, from, to, seq, attempt)) {
      // Lost on the wire: the sender times out waiting for the ack (the
      // timeout backs off exponentially per attempt), then retransmits —
      // both charged through the transport cost model.
      const double penalty =
          pol.timeout_factor_at(attempt) *
              transport_->message_seconds(sw::kMsgAckBytes) +
          transport_->message_seconds(frame.size());
      s += penalty;
      inj.record_msg_drop();
      inj.record_msg_retransmit(penalty);
      ++attempt;
      SWGMX_CHECK_MSG(attempt <= pol.max_msg_retries,
                      "message retransmit budget exhausted ("
                          << pol.max_msg_retries << " retries, " << from
                          << " -> " << to << " seq " << seq << " at step "
                          << step << ")");
    }
    if (plan.msg_delay(step, from, to, seq)) {
      const double extra = sw::kMsgDelaySpike * s;
      s += extra;
      inj.record_msg_delay(extra);
    }
    duplicate = plan.msg_dup(step, from, to, seq);
  }
  cost_s_ += s;
  ++nmsg_;
  auto& box = boxes_[static_cast<std::size_t>(to)];
  if (duplicate) {
    box.push_back(frame);
    inj.record_msg_duplicate();
  }
  box.push_back(std::move(frame));
}

std::vector<std::uint8_t> LoopbackNetwork::recv(int rank) {
  auto& box = boxes_[static_cast<std::size_t>(rank)];
  while (!box.empty()) {
    auto frame = std::move(box.front());
    box.pop_front();
    std::uint32_t from32 = 0;
    std::uint64_t seq = 0;
    std::memcpy(&from32, frame.data(), sizeof(from32));
    std::memcpy(&seq, frame.data() + sizeof(from32), sizeof(seq));
    auto& seen = last_seen_[static_cast<std::size_t>(rank)][from32];
    if (seq <= seen) continue;  // stale duplicate — already delivered
    seen = seq;
    return {frame.begin() + static_cast<std::ptrdiff_t>(kHeaderBytes),
            frame.end()};
  }
  return {};
}

bool LoopbackNetwork::has_message(int rank) const {
  return !boxes_[static_cast<std::size_t>(rank)].empty();
}

}  // namespace swgmx::net
