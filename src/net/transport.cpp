#include "net/transport.hpp"

#include <cmath>

#include "common/error.hpp"

namespace swgmx::net {

double MpiSimTransport::message_seconds(std::size_t bytes) const {
  const double b = static_cast<double>(bytes);
  return p_.latency_s + b / p_.wire_bw +
         static_cast<double>(p_.copies) * b / p_.copy_bw + b * p_.pack_s_per_byte;
}

double RdmaSimTransport::message_seconds(std::size_t bytes) const {
  return p_.latency_s + static_cast<double>(bytes) / p_.wire_bw;
}

double allreduce_seconds(const Transport& t, std::size_t bytes, int nranks) {
  if (nranks <= 1) return 0.0;
  const double rounds = std::ceil(std::log2(static_cast<double>(nranks)));
  // reduce + broadcast phases.
  return 2.0 * rounds * t.message_seconds(bytes);
}

double alltoall_seconds(const Transport& t, std::size_t bytes_per_pair,
                        int nranks) {
  if (nranks <= 1) return 0.0;
  // Pairwise exchange: nranks-1 rounds, each round sends/receives in parallel.
  return static_cast<double>(nranks - 1) * t.message_seconds(bytes_per_pair);
}

LoopbackNetwork::LoopbackNetwork(int nranks, std::shared_ptr<Transport> transport)
    : nranks_(nranks),
      transport_(std::move(transport)),
      boxes_(static_cast<std::size_t>(nranks)) {
  SWGMX_CHECK(nranks > 0);
  SWGMX_CHECK(transport_ != nullptr);
}

void LoopbackNetwork::send(int from, int to, std::vector<std::uint8_t> payload) {
  SWGMX_CHECK(from >= 0 && from < nranks_ && to >= 0 && to < nranks_);
  cost_s_ += transport_->message_seconds(payload.size());
  ++nmsg_;
  boxes_[static_cast<std::size_t>(to)].push_back(std::move(payload));
}

std::vector<std::uint8_t> LoopbackNetwork::recv(int rank) {
  auto& box = boxes_[static_cast<std::size_t>(rank)];
  if (box.empty()) return {};
  auto msg = std::move(box.front());
  box.pop_front();
  return msg;
}

bool LoopbackNetwork::has_message(int rank) const {
  return !boxes_[static_cast<std::size_t>(rank)].empty();
}

}  // namespace swgmx::net
