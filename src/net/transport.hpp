// Communication transports (§3.6). The paper replaces MPI point-to-point
// with raw RDMA: MPI pays four memory copies plus TCP-style pack/unpack CPU
// time per message; RDMA moves user memory to user memory with no kernel
// involvement. Both are modeled here as deterministic cost functions, plus a
// functional in-process mailbox network for correctness tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

namespace swgmx::net {

/// Cost model of one point-to-point message.
class Transport {
 public:
  virtual ~Transport() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// End-to-end seconds for one message of `bytes`.
  [[nodiscard]] virtual double message_seconds(std::size_t bytes) const = 0;
};

/// MPI over the TaihuLight interconnect: user->kernel copy, kernel->NIC
/// copy, NIC->kernel copy, kernel->user copy, plus pack/unpack CPU time.
class MpiSimTransport final : public Transport {
 public:
  struct Params {
    double latency_s = 1.6e-6;       ///< per-message software latency
    double wire_bw = 12e9;           ///< link bandwidth, B/s
    double copy_bw = 6e9;            ///< memcpy bandwidth, B/s
    int copies = 4;                  ///< the four copies of §3.6
    double pack_s_per_byte = 0.3e-9; ///< pack + unpack CPU time
  };
  MpiSimTransport() : p_{} {}
  explicit MpiSimTransport(Params p) : p_(p) {}
  [[nodiscard]] std::string name() const override { return "MPI"; }
  [[nodiscard]] double message_seconds(std::size_t bytes) const override;

 private:
  Params p_;
};

/// RDMA: NIC reads user memory directly; no copies, no pack, lower latency.
class RdmaSimTransport final : public Transport {
 public:
  struct Params {
    double latency_s = 0.9e-6;
    double wire_bw = 12e9;
  };
  RdmaSimTransport() : p_{} {}
  explicit RdmaSimTransport(Params p) : p_(p) {}
  [[nodiscard]] std::string name() const override { return "RDMA"; }
  [[nodiscard]] double message_seconds(std::size_t bytes) const override;

 private:
  Params p_;
};

// --- collective cost helpers (tree algorithms) ---

/// Binomial-tree allreduce of `bytes` across `nranks`.
[[nodiscard]] double allreduce_seconds(const Transport& t, std::size_t bytes,
                                       int nranks);
/// Pairwise all-to-all where every rank sends `bytes_per_pair` to every other.
[[nodiscard]] double alltoall_seconds(const Transport& t,
                                      std::size_t bytes_per_pair, int nranks);

// --- functional in-process network (for tests) ---

/// Mailbox network: rank r sends byte payloads to rank s; receive pops in
/// FIFO order. Single-threaded (ranks are simulated sequentially), so no
/// locking. Accumulates the modeled cost of every message it carries.
///
/// Delivery is reliable under fault injection: every message carries a
/// (sender, sequence) header; a dropped message is retransmitted after a
/// modeled ack timeout with exponential backoff (charged to the cost model,
/// bounded by sw::RetryPolicy), duplicated deliveries are discarded on
/// receive, and
/// latency spikes inflate the carried cost. With faults disabled the header
/// is inert and each payload is delivered exactly once, in order.
class LoopbackNetwork {
 public:
  LoopbackNetwork(int nranks, std::shared_ptr<Transport> transport);

  void send(int from, int to, std::vector<std::uint8_t> payload);
  /// Pops the next fresh message for `rank` (skipping stale duplicates);
  /// returns empty if none.
  [[nodiscard]] std::vector<std::uint8_t> recv(int rank);
  /// True when the mailbox is non-empty (may hold only duplicates, in which
  /// case the next recv() drains them and returns empty).
  [[nodiscard]] bool has_message(int rank) const;

  [[nodiscard]] double total_cost_seconds() const { return cost_s_; }
  /// Logical sends (retransmits are charged to cost, not counted here).
  [[nodiscard]] std::size_t messages_sent() const { return nmsg_; }

 private:
  /// Wire frame: [from:u32][seq:u64][payload...].
  static constexpr std::size_t kHeaderBytes = 12;
  int nranks_;
  std::shared_ptr<Transport> transport_;
  std::vector<std::deque<std::vector<std::uint8_t>>> boxes_;
  std::vector<std::vector<std::uint64_t>> next_seq_;   ///< [from][to]
  std::vector<std::vector<std::uint64_t>> last_seen_;  ///< [to][from]
  double cost_s_ = 0.0;
  std::size_t nmsg_ = 0;
};

}  // namespace swgmx::net
