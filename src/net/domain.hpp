// 3-D spatial domain decomposition across core groups (one MPI rank per CG,
// as on TaihuLight).
#pragma once

#include <array>
#include <span>
#include <vector>

#include "common/vec3.hpp"
#include "md/box.hpp"

namespace swgmx::net {

/// Near-cubic factorization of `nranks` into a px * py * pz grid over the
/// box, with rank lookup by position and halo-volume accounting.
class DomainDecomposition {
 public:
  DomainDecomposition(const md::Box& box, int nranks);

  [[nodiscard]] int nranks() const { return px_ * py_ * pz_; }
  [[nodiscard]] std::array<int, 3> dims() const { return {px_, py_, pz_}; }

  /// Re-factorize the grid over a new rank count (elastic re-decomposition
  /// after rank evictions): the box is re-split into `nranks` near-cubic
  /// cells and every rank_of / halo query reflects the survivor set.
  void rebuild(int nranks);

  /// Rank owning a (wrapped) position.
  [[nodiscard]] int rank_of(const Vec3f& pos) const;

  /// Fraction of this rank's particles that sit within `halo_width` of a
  /// domain face (estimate: surface shell volume / cell volume, clamped).
  [[nodiscard]] double halo_fraction(double halo_width) const;

  /// Number of neighbor ranks a rank exchanges halos with (up to 26; fewer
  /// for degenerate grids).
  [[nodiscard]] int halo_neighbors() const;

  /// Messages per staged halo exchange: GROMACS DD communicates in 2 pulses
  /// per decomposed dimension (corners forwarded), not pairwise with all 26
  /// neighbors.
  [[nodiscard]] int halo_pulses() const;

 private:
  md::Box box_;
  int px_, py_, pz_;
};

/// Count of items assigned to each rank given their positions.
[[nodiscard]] std::vector<std::size_t> assign_counts(
    const DomainDecomposition& dd, std::span<const Vec3f> positions);

}  // namespace swgmx::net
