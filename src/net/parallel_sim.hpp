// Multi-core-group (multi-rank) MD driver.
//
// Substitution note (see DESIGN.md): the physics is computed once, globally
// — identical to the single-rank Simulation, so results are exactly
// rank-count-invariant — while the *time* of every phase is modeled per rank
// from the real domain decomposition: each rank's share of cluster pairs
// (with true spatial load imbalance), halo exchange and PME all-to-all
// volumes through the MPI/RDMA transport models, and the per-step energy
// all-reduce that dominates Case 2's "Comm. energies" row.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "md/simulation.hpp"
#include "net/domain.hpp"
#include "net/transport.hpp"

namespace swgmx::net {

struct ParallelOptions {
  int nranks = 4;
  md::SimOptions sim;
  bool rdma = false;  ///< §3.6: use the RDMA transport instead of MPI
  /// Multiplier on the energy all-reduce capturing synchronization skew
  /// (ranks arrive at the reduce at different times).
  double energy_comm_skew = 4.0;
  /// Under fault injection: cumulative message losses before an RDMA run
  /// degrades gracefully to the (reliable, slower) MPI transport.
  int rdma_fallback_drops = 16;
};

class ParallelSim {
 public:
  ParallelSim(md::System sys, ParallelOptions opt, md::ShortRangeBackend& sr,
              md::PairListBackend& pl, md::LongRangeBackend* lr = nullptr,
              md::TrajSink* traj = nullptr);

  void step();
  void run(int nsteps);

  [[nodiscard]] const md::System& system() const { return sys_; }
  /// Critical-path (max-over-ranks) simulated seconds per phase.
  [[nodiscard]] const sw::PhaseTimers& timers() const { return timers_; }
  [[nodiscard]] double total_seconds() const { return timers_.total(); }
  [[nodiscard]] std::int64_t current_step() const { return step_; }
  [[nodiscard]] const std::vector<md::EnergySample>& energy_series() const {
    return series_;
  }
  [[nodiscard]] const Transport& transport() const { return *transport_; }
  /// Max-over-ranks share of cluster pairs (load imbalance indicator).
  [[nodiscard]] double max_pair_share() const { return max_pair_share_; }
  /// Rollbacks performed so far (numeric watchdog recoveries).
  [[nodiscard]] std::uint64_t rollback_count() const { return rollbacks_; }
  /// Messages lost (and retransmitted) so far under fault injection.
  [[nodiscard]] std::uint64_t message_drops() const { return drops_; }

 private:
  void neighbor_search();
  [[nodiscard]] double mpe_secs(double ops, double mem) const;
  /// Pass a modeled communication cost through the fault plan: drops charge
  /// an ack timeout plus a retransmit (and can trigger the RDMA->MPI
  /// fallback), latency spikes inflate it. Identity when faults are off.
  double faulted_cost(double base_s);
  /// faulted_cost of one point-to-point message of `bytes`.
  double comm_seconds(std::size_t bytes);
  void fall_back_to_mpi();
  void take_snapshot();
  void inject_numeric_fault();
  [[nodiscard]] bool state_healthy(const AlignedVector<Vec3f>& x_ref) const;
  void rollback();
  void maybe_write_checkpoint();
  // --- observability (all no-ops when tracing is off) ---
  /// Register one trace process per rank ("rank r").
  void trace_rank_tracks();
  /// Emit a communication phase on every rank track plus message flow
  /// events, then advance the simulated clock past it. `gather_to_rank0`
  /// draws ranks 1..R-1 -> rank 0 flows (reductions / gathers); otherwise
  /// each rank sends to its ring neighbor (halo pulses, transposes).
  void trace_rank_exchange(const char* name, double seconds,
                           bool gather_to_rank0);
  /// Per-rank step flight-recorder spans.
  void finish_step_trace(double step_t0, std::int64_t step_at_entry,
                         bool rebuilt);

  md::System sys_;
  ParallelOptions opt_;
  md::ShortRangeBackend* sr_;
  md::PairListBackend* pl_;
  md::LongRangeBackend* lr_;
  md::TrajSink* traj_;
  md::Shake shake_;

  DomainDecomposition dd_;
  std::unique_ptr<Transport> transport_;

  std::optional<md::ClusterSystem> clusters_;
  md::ClusterPairList list_;
  AlignedVector<Vec3f> f_slots_;
  double max_pair_share_ = 1.0;
  double max_cluster_share_ = 1.0;
  /// Per-rank fraction of cluster pairs from the current decomposition
  /// (sums to 1); sizes the per-rank Force spans in the trace.
  std::vector<double> pair_fraction_;

  sw::PhaseTimers timers_;
  std::vector<md::EnergySample> series_;
  std::int64_t step_ = 0;

  /// Rollback target, captured at pair-list rebuild boundaries (see
  /// md::Simulation — same replay-bit-identity argument).
  struct Snapshot {
    std::int64_t step = -1;
    AlignedVector<Vec3f> x, v;
  };
  Snapshot snap_;
  std::uint64_t kick_generation_ = 0;
  std::uint64_t rollbacks_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t msg_ordinal_ = 0;  ///< fault key for modeled messages
  int consecutive_rollbacks_ = 0;
  std::int64_t last_detect_step_ = -1;
  bool skip_rebuild_ = false;
  bool using_rdma_ = false;
};

}  // namespace swgmx::net
