// Multi-core-group (multi-rank) MD driver.
//
// Substitution note (see DESIGN.md): the physics is computed once, globally
// — identical to the single-rank Simulation, so results are exactly
// rank-count-invariant — while the *time* of every phase is modeled per rank
// from the real domain decomposition: each rank's share of cluster pairs
// (with true spatial load imbalance), halo exchange and PME all-to-all
// volumes through the MPI/RDMA transport models, and the per-step energy
// all-reduce that dominates Case 2's "Comm. energies" row.
//
// Rank-level fault tolerance (DESIGN.md §2.9): under a `rank_crash` /
// `rank_hang` fault plan the driver runs a simulated-time heartbeat failure
// detector, evicts confirmed-dead ranks (promoting hot spares first when
// configured), elastically re-decomposes the box over the survivors, and
// rolls back to the last coordinated checkpoint. Because physics is global,
// the replayed trajectory is bit-identical to a fault-free run; only the
// modeled time pays for detection, re-decomposition and replay.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "md/simulation.hpp"
#include "net/domain.hpp"
#include "net/transport.hpp"

namespace swgmx::net {

struct ParallelOptions {
  int nranks = 4;
  md::SimOptions sim;
  bool rdma = false;  ///< §3.6: use the RDMA transport instead of MPI
  /// Multiplier on the energy all-reduce capturing synchronization skew
  /// (ranks arrive at the reduce at different times).
  double energy_comm_skew = 4.0;
  /// Under fault injection: cumulative message losses before an RDMA run
  /// degrades gracefully to the (reliable, slower) MPI transport.
  int rdma_fallback_drops = 16;
  /// Hot-spare ranks held in reserve on top of `nranks`: an evicted rank is
  /// replaced by a spare (decomposition unchanged) before the survivor set
  /// is allowed to shrink. The SWGMX_FAULTS `spare_ranks` key raises this.
  int spare_ranks = 0;
};

class ParallelSim {
 public:
  ParallelSim(md::System sys, ParallelOptions opt, md::ShortRangeBackend& sr,
              md::PairListBackend& pl, md::LongRangeBackend* lr = nullptr,
              md::TrajSink* traj = nullptr);

  void step();
  void run(int nsteps);

  [[nodiscard]] const md::System& system() const { return sys_; }
  /// Critical-path (max-over-ranks) simulated seconds per phase.
  [[nodiscard]] const sw::PhaseTimers& timers() const { return timers_; }
  [[nodiscard]] double total_seconds() const { return timers_.total(); }
  [[nodiscard]] std::int64_t current_step() const { return step_; }
  [[nodiscard]] const std::vector<md::EnergySample>& energy_series() const {
    return series_;
  }
  [[nodiscard]] const Transport& transport() const { return *transport_; }
  /// Max-over-ranks share of cluster pairs (load imbalance indicator).
  [[nodiscard]] double max_pair_share() const { return max_pair_share_; }
  /// Rollbacks performed so far (numeric watchdog + rank-failure recoveries).
  [[nodiscard]] std::uint64_t rollback_count() const { return rollbacks_; }
  /// Messages lost (and retransmitted) so far under fault injection.
  [[nodiscard]] std::uint64_t message_drops() const { return drops_; }
  // --- rank fault tolerance ---
  /// Compute ranks still in the decomposition (== nranks until an eviction
  /// shrinks the survivor set past the spare budget).
  [[nodiscard]] int active_ranks() const {
    return static_cast<int>(active_.size());
  }
  /// Launch-time world size: compute ranks + hot spares.
  [[nodiscard]] int world_size() const { return world_size_; }
  /// World ids of evicted ranks, in eviction order.
  [[nodiscard]] const std::vector<int>& evicted_ranks() const {
    return evicted_;
  }
  [[nodiscard]] std::uint64_t spares_promoted() const {
    return spares_promoted_;
  }

 private:
  void neighbor_search();
  /// The halo_x → halo_f force section as a StepGraph (overlap engine): the
  /// position halo and FFT all-to-all are posted early on the interconnect
  /// resource and overlap the local force compute; short-range and PME run
  /// on concurrent CPE partitions; the force halo is the only dependent
  /// communication. Physics and message ordinals are issued in the exact
  /// serial host order, so trajectories are bit-identical to overlap=off.
  void compute_forces_overlapped(int R, double n, md::NbEnergies& nb_e,
                                 md::BondedEnergies& bonded_e, double& e_long);
  [[nodiscard]] int nactive() const { return static_cast<int>(active_.size()); }
  [[nodiscard]] double mpe_secs(double ops, double mem) const;
  /// Pass a modeled communication cost through the fault plan: drops charge
  /// an ack timeout plus a retransmit (and can trigger the RDMA->MPI
  /// fallback), latency spikes inflate it. Identity when faults are off.
  double faulted_cost(double base_s);
  /// faulted_cost of one point-to-point message of `bytes`.
  double comm_seconds(std::size_t bytes);
  void fall_back_to_mpi();
  void take_snapshot();
  void inject_numeric_fault();
  [[nodiscard]] bool state_healthy(const AlignedVector<Vec3f>& x_ref) const;
  void rollback();
  void maybe_write_checkpoint();
  void trace_rank_tracks();
  void trace_rank_exchange(const char* name, double seconds,
                           bool gather_to_rank0);
  /// Draw one exchange at an explicit start time without advancing the
  /// clock (overlap engine: the span lands at the graph node's scheduled
  /// start while the driver's clock is elsewhere).
  void trace_rank_exchange_at(const char* name, double t0_ns, double seconds,
                              bool gather_to_rank0);
  void finish_step_trace(double step_t0, std::int64_t step_at_entry,
                         bool rebuilt);
  // --- rank fault tolerance ---
  /// Probe the fault plan for whole-rank failures this step. On failure:
  /// charge the heartbeat/gossip detection latency, evict the dead ranks
  /// (promoting hot spares first), elastically re-decompose over the
  /// survivor set, and roll back to the coordinated snapshot. Returns true
  /// when a failure was handled (the caller's step must return so the run
  /// loop replays from the restored state).
  bool check_rank_faults();

  md::System sys_;
  ParallelOptions opt_;
  md::ShortRangeBackend* sr_;
  md::PairListBackend* pl_;
  md::LongRangeBackend* lr_;
  md::TrajSink* traj_;
  md::Shake shake_;

  DomainDecomposition dd_;
  std::unique_ptr<Transport> transport_;

  std::optional<md::ClusterSystem> clusters_;
  md::ClusterPairList list_;
  AlignedVector<Vec3f> f_slots_;
  double max_pair_share_ = 1.0;
  double max_cluster_share_ = 1.0;
  /// Per-decomposition-slot fraction of cluster pairs (sums to 1); sizes the
  /// per-rank Force spans in the trace.
  std::vector<double> pair_fraction_;

  sw::PhaseTimers timers_;
  std::vector<md::EnergySample> series_;
  std::int64_t step_ = 0;

  /// Rollback target, captured at pair-list rebuild boundaries (see
  /// md::Simulation — same replay-bit-identity argument). Doubles as the
  /// in-memory image of the last *coordinated* checkpoint for rank-failure
  /// recovery.
  struct Snapshot {
    std::int64_t step = -1;
    AlignedVector<Vec3f> x, v;
  };
  Snapshot snap_;
  std::uint64_t kick_generation_ = 0;
  std::uint64_t rollbacks_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t msg_ordinal_ = 0;  ///< fault key for modeled messages
  int consecutive_rollbacks_ = 0;
  std::int64_t last_detect_step_ = -1;
  bool skip_rebuild_ = false;
  bool using_rdma_ = false;

  // --- rank fault-tolerance state (world ids are launch-time rank ids) ---
  int world_size_ = 0;
  std::vector<int> active_;      ///< world id per decomposition slot
  std::vector<int> spares_free_; ///< unpromoted hot spares, promotion order
  std::vector<int> evicted_;     ///< world ids removed, eviction order
  std::uint64_t spares_promoted_ = 0;

  /// Split/no-split and ratio decisions for the overlap engine's CPE
  /// partitions, probing on measured per-stream seconds.
  md::PartitionPlanner planner_;
};

}  // namespace swgmx::net
