// CpeContext: the per-CPE handle a kernel receives. Mirrors the athread
// programming model: an id in the 8x8 mesh, the LDM arena, DMA, gld/gst,
// and explicit compute-cost charging hooks.
#pragma once

#include <algorithm>
#include <cstring>

#include "obs/trace.hpp"
#include "sw/dma.hpp"
#include "sw/ldm.hpp"
#include "sw/perf.hpp"

namespace swgmx::sw {

/// Everything a CPE kernel can touch. Constructed by CoreGroup for each of
/// the 64 CPEs; kernels receive it by reference.
class CpeContext {
 public:
  CpeContext(int id, const SwConfig& cfg, LdmArena& ldm)
      : id_(id), cfg_(&cfg), ldm_(&ldm), dma_(cfg, id) {}

  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] int row() const { return id_ / cfg_->cpe_mesh_dim; }
  [[nodiscard]] int col() const { return id_ % cfg_->cpe_mesh_dim; }
  [[nodiscard]] const SwConfig& config() const { return *cfg_; }

  [[nodiscard]] LdmArena& ldm() { return *ldm_; }
  [[nodiscard]] PerfCounters& perf() { return perf_; }
  [[nodiscard]] const PerfCounters& perf() const { return perf_; }

  /// Attach this CPE's per-launch trace staging log (set by the launcher
  /// when SWGMX_TRACE is active, null otherwise — the off path is one
  /// pointer test per DMA call).
  void set_trace_log(obs::CpeKernelLog* log) { tlog_ = log; }

  // --- double-buffered DMA pipeline (DESIGN.md §2.10) ---
  // With the pipeline on, each DMA call keeps one transfer in flight: when
  // the next DMA is issued (or the kernel drains), the in-flight transfer is
  // retired and the compute cycles charged since its issue hide it — refund =
  // min(dma_cycles, compute window). The hide frontier guarantees a given
  // compute cycle never hides two transfers. Kernels opt in per launch; the
  // launcher drains after the kernel body returns.
  void set_dma_pipeline(bool on) {
    dma_pipeline_drain();
    pipeline_ = on;
  }
  [[nodiscard]] bool dma_pipeline() const { return pipeline_; }
  void dma_pipeline_drain() {
    if (!pending_) return;
    pending_ = false;
    const double window_start = std::max(pending_compute_at_, hide_frontier_);
    const double avail =
        std::max(0.0, perf_.compute_cycles - window_start);
    const double hidden = std::min(pending_dma_, avail);
    hide_frontier_ = window_start + hidden;
    perf_.dma_cycles -= hidden;
    perf_.hidden_dma_cycles += hidden;
  }

  // --- DMA (bulk, contiguous) ---
  void dma_get(void* ldm_dst, const void* mem_src, std::size_t bytes) {
    issue_dma([&] {
      if (tlog_ == nullptr) {
        dma_.get(ldm_dst, mem_src, bytes, perf_);
        return;
      }
      traced_dma('g', 1, [&] { dma_.get(ldm_dst, mem_src, bytes, perf_); });
    });
  }
  void dma_put(void* mem_dst, const void* ldm_src, std::size_t bytes) {
    issue_dma([&] {
      if (tlog_ == nullptr) {
        dma_.put(mem_dst, ldm_src, bytes, perf_);
        return;
      }
      traced_dma('p', 1, [&] { dma_.put(mem_dst, ldm_src, bytes, perf_); });
    });
  }

  // --- DMA (strided / 2-D) ---
  void dma_get_2d(void* ldm_dst, const void* mem_src, std::size_t rows,
                  std::size_t row_bytes, std::size_t mem_pitch,
                  std::size_t ldm_pitch) {
    issue_dma([&] {
      if (tlog_ == nullptr) {
        dma_.get_2d(ldm_dst, mem_src, rows, row_bytes, mem_pitch, ldm_pitch,
                    perf_);
        return;
      }
      traced_dma('G', rows, [&] {
        dma_.get_2d(ldm_dst, mem_src, rows, row_bytes, mem_pitch, ldm_pitch,
                    perf_);
      });
    });
  }
  void dma_put_2d(void* mem_dst, const void* ldm_src, std::size_t rows,
                  std::size_t row_bytes, std::size_t mem_pitch,
                  std::size_t ldm_pitch) {
    issue_dma([&] {
      if (tlog_ == nullptr) {
        dma_.put_2d(mem_dst, ldm_src, rows, row_bytes, mem_pitch, ldm_pitch,
                    perf_);
        return;
      }
      traced_dma('P', rows, [&] {
        dma_.put_2d(mem_dst, ldm_src, rows, row_bytes, mem_pitch, ldm_pitch,
                    perf_);
      });
    });
  }

  // --- gld/gst (single-element, high latency) ---
  /// Global load: read one T from main memory, charging the ~278-cycle
  /// round-trip the real chip pays.
  template <typename T>
  [[nodiscard]] T gld(const T& mem_src) {
    perf_.gld_cycles += cfg_->gld_latency_cycles;
    perf_.gld_count += 1;
    return mem_src;
  }
  /// Global store: write one T to main memory.
  template <typename T>
  void gst(T& mem_dst, const T& value) {
    perf_.gld_cycles += cfg_->gst_latency_cycles;
    perf_.gst_count += 1;
    mem_dst = value;
  }

  // --- compute-cost charging ---
  // Kernels compute real values with host arithmetic and charge the SW26010
  // cost via these hooks (closed-form per-loop constants; see core/cost.hpp).
  void charge_flops(double n) { perf_.compute_cycles += n * cfg_->cpe_flop_cycles; }
  void charge_vec_ops(double n) { perf_.compute_cycles += n * cfg_->cpe_vec_op_cycles; }
  void charge_divs(double n) { perf_.compute_cycles += n * cfg_->cpe_div_cycles; }
  void charge_vec_divs(double n) { perf_.compute_cycles += n * cfg_->cpe_vec_div_cycles; }
  void charge_shuffles(double n) { perf_.compute_cycles += n * cfg_->cpe_shuffle_cycles; }
  void charge_cycles(double n) { perf_.compute_cycles += n; }

 private:
  /// Issue one DMA through the pipeline. Transfers issued back to back with
  /// no compute in between form one in-flight batch (the engine queues
  /// descriptors); as soon as compute has been charged since the batch's
  /// first issue, the batch is retired — refunding whatever part of it the
  /// compute window hides — and a new batch starts.
  template <typename Fn>
  void issue_dma(Fn&& fn) {
    if (!pipeline_) {
      fn();
      return;
    }
    if (pending_ && perf_.compute_cycles > pending_compute_at_) {
      dma_pipeline_drain();
    }
    const double d0 = perf_.dma_cycles;
    fn();
    if (pending_) {
      pending_dma_ += perf_.dma_cycles - d0;
    } else {
      pending_dma_ = perf_.dma_cycles - d0;
      pending_compute_at_ = perf_.compute_cycles;
      pending_ = true;
    }
  }

  /// Run one DMA call and stage a CpeDmaRecord from the counter deltas it
  /// leaves behind: the byte/cycle costs come straight from PerfCounters,
  /// and any dma_transfers beyond the expected `rows` are CRC retries.
  template <typename Fn>
  void traced_dma(char op, std::size_t rows, Fn&& fn) {
    const double c0 = perf_.total_cycles();
    const std::uint64_t xfers0 = perf_.dma_transfers;
    const std::uint64_t bytes0 = perf_.dma_bytes;
    fn();
    obs::CpeDmaRecord rec;
    rec.op = op;
    rec.rows = static_cast<std::uint32_t>(rows);
    rec.retries =
        static_cast<std::uint32_t>(perf_.dma_transfers - xfers0 - rows);
    rec.bytes = perf_.dma_bytes - bytes0;
    rec.start_cycles = c0;
    rec.end_cycles = perf_.total_cycles();
    tlog_->dma.push_back(rec);
  }

  int id_;
  const SwConfig* cfg_;
  LdmArena* ldm_;
  DmaEngine dma_;
  PerfCounters perf_;
  obs::CpeKernelLog* tlog_ = nullptr;

  // Double-buffer pipeline state (see set_dma_pipeline).
  bool pipeline_ = false;
  bool pending_ = false;
  double pending_dma_ = 0.0;        ///< cost of the in-flight transfer
  double pending_compute_at_ = 0.0; ///< compute_cycles when it was issued
  double hide_frontier_ = 0.0;      ///< compute_cycles already used for hiding
};

}  // namespace swgmx::sw
