// Deterministic fault-injection framework.
//
// The simulator models exactly the layers that fail first at TaihuLight
// scale — DMA channels, the interconnect, individual CPEs — so this module
// lets tests and soak runs inject faults into them and lets the run loop
// prove it can detect, contain and recover. Two design rules:
//
//  1. Determinism. Every fault decision is a pure hash of
//     (seed, fault kind, step, lane/rank, transfer/sequence index, attempt)
//     — never wall clock, never host thread identity. The same seed and
//     rates produce the same fault pattern for any SWGMX_THREADS, so the
//     pool-size equivalence gates extend to faulted runs.
//
//  2. Recovery is charged to simulated time. Retried DMA transfers,
//     retransmitted messages, straggler cycles and replayed steps all flow
//     through the normal cost model, so resilience has a measurable
//     simulated-time price (RecoveryStats::seconds_lost).
//
// Configured from the SWGMX_FAULTS environment variable, e.g.
//   SWGMX_FAULTS=dma_flip:1e-6,dma_stall:1e-4,msg_drop:1e-5,seed:42
// or, for whole-rank chaos with two hot spares and custom retry knobs,
//   SWGMX_FAULTS=rank_crash:5e-3,rank_hang:1e-3,spare_ranks:2,msg_backoff:1.5
// With the variable unset the injector is disabled and every hook reduces
// to one relaxed atomic load.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace swgmx::sw {

// --- recovery policy constants (the RetryPolicy defaults) ---
inline constexpr int kMaxDmaRetries = 4;      ///< CRC-retry budget per transfer
inline constexpr int kMaxMsgRetries = 6;      ///< retransmit budget per message
inline constexpr int kMaxConsecutiveRollbacks = 8;  ///< per snapshot before giving up
inline constexpr double kDmaStallPenalty = 8.0;     ///< stall = this x transfer cycles
inline constexpr double kCrcCyclesPerByte = 0.5;    ///< software CRC32 on a CPE (2 passes)
inline constexpr double kStragglerSlowdown = 1.0;   ///< straggler runs (1+this)x slower
inline constexpr double kMsgTimeoutFactor = 20.0;   ///< first ack-timeout, in ack-message units
inline constexpr std::size_t kMsgAckBytes = 64;     ///< modeled ack / heartbeat message size
inline constexpr double kMsgDelaySpike = 10.0;      ///< latency-spike multiplier
inline constexpr double kMsgBackoff = 2.0;          ///< retransmit timeout growth per attempt
inline constexpr double kHeartbeatInterval = 1e-3;  ///< modeled s between rank heartbeats
inline constexpr double kHeartbeatTimeout = 5e-3;   ///< silent this long => rank suspected
inline constexpr int kGossipConfirmations = 2;      ///< neighbor confirmations before eviction

/// Every retry / timeout knob of the recovery layers in one place, instead
/// of call sites hard-coding the k-constants above (which remain as the
/// documented defaults). Message retransmits use *exponential backoff*: the
/// ack timeout for attempt k is `msg_timeout_factor * msg_backoff^k` ack
/// units, so a lossy link degrades gracefully instead of hammering.
/// Overridable per run through SWGMX_FAULTS keys (see parse_fault_spec).
struct RetryPolicy {
  int max_dma_retries = kMaxDmaRetries;    ///< key: max_dma_retries
  int max_msg_retries = kMaxMsgRetries;    ///< key: max_msg_retries
  double msg_timeout_factor = kMsgTimeoutFactor;  ///< key: msg_timeout_factor
  double msg_backoff = kMsgBackoff;        ///< key: msg_backoff (>= 1)
  double heartbeat_interval_s = kHeartbeatInterval;  ///< key: hb_interval
  double heartbeat_timeout_s = kHeartbeatTimeout;    ///< key: hb_timeout
  int gossip_confirmations = kGossipConfirmations;   ///< key: gossip_confirmations

  /// Ack-timeout multiplier for retransmit attempt `attempt` (0-based):
  /// msg_timeout_factor * msg_backoff^attempt.
  [[nodiscard]] double timeout_factor_at(int attempt) const {
    double f = msg_timeout_factor;
    for (int k = 0; k < attempt; ++k) f *= msg_backoff;
    return f;
  }
};

/// Per-kind fault probabilities (per transfer / message / CPE-launch / step),
/// plus the retry/timeout policy and the hot-spare budget parsed from the
/// same SWGMX_FAULTS spec.
struct FaultRates {
  double dma_flip = 0.0;      ///< one bit of a DMA payload flips
  double dma_stall = 0.0;     ///< a DMA transfer stalls (kDmaStallPenalty x cost)
  double msg_drop = 0.0;      ///< a point-to-point message is lost
  double msg_dup = 0.0;       ///< a message is delivered twice
  double msg_delay = 0.0;     ///< a message hits a latency spike
  double cpe_straggle = 0.0;  ///< a CPE finishes (1+kStragglerSlowdown)x late
  double numeric_kick = 0.0;  ///< a force entry is corrupted (NaN / blow-up)
  double rank_crash = 0.0;    ///< a whole rank dies, per rank per step
  double rank_hang = 0.0;     ///< a whole rank goes silent, per rank per step
  double journal_torn = 0.0;  ///< a journal frame lands torn (partial payload)
  double journal_crc = 0.0;   ///< one bit of a journal frame flips on disk
  double fsync_fail = 0.0;    ///< a durable flush (file or directory) fails
  /// Journal event index after which the scheduler process dies
  /// (svc::ServiceCrash), modeling mid-event-loop death; -1 disables.
  std::int64_t svc_crash_event = -1;
  int spare_ranks = 0;        ///< hot spares ParallelSim may promote on eviction
  RetryPolicy policy;         ///< retry/timeout/heartbeat knobs
  std::uint64_t seed = 0x53574758ull;  // "SWGX"

  [[nodiscard]] bool any() const {
    return dma_flip > 0.0 || dma_stall > 0.0 || msg_drop > 0.0 ||
           msg_dup > 0.0 || msg_delay > 0.0 || cpe_straggle > 0.0 ||
           numeric_kick > 0.0 || rank_crash > 0.0 || rank_hang > 0.0 ||
           journal_torn > 0.0 || journal_crc > 0.0 || fsync_fail > 0.0 ||
           svc_crash_event >= 0;
  }
};

/// Parse a SWGMX_FAULTS spec ("dma_flip:1e-6,msg_drop:1e-5,seed:42").
/// nullptr/empty yields all-zero rates. Throws swgmx::Error with a precise
/// message on: malformed `key:value` pairs, unknown keys, duplicate keys,
/// rates outside [0, 1], negative integer knobs (spare_ranks, *_retries,
/// gossip_confirmations), msg_backoff < 1, non-positive timeouts, or
/// hb_timeout < hb_interval.
[[nodiscard]] FaultRates parse_fault_spec(const char* spec);

enum class FaultKind : std::uint64_t {
  DmaFlip = 1,
  DmaStall,
  MsgDrop,
  MsgDup,
  MsgDelay,
  CpeStraggle,
  NumericKick,
  RankCrash,
  RankHang,
  JournalTorn,
  JournalCrc,
  FsyncFail,
  SvcCrash,
};

/// Pure deterministic fault oracle: every method is a hash of its arguments
/// and the seed. Copyable, no state beyond the rates.
class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(FaultRates r) : r_(r) {}

  [[nodiscard]] const FaultRates& rates() const { return r_; }

  [[nodiscard]] bool dma_flip(std::uint64_t step, int lane, std::uint64_t xfer,
                              int attempt) const {
    return fires(FaultKind::DmaFlip, r_.dma_flip, step,
                 static_cast<std::uint64_t>(lane), xfer,
                 static_cast<std::uint64_t>(attempt));
  }
  [[nodiscard]] bool dma_stall(std::uint64_t step, int lane, std::uint64_t xfer,
                               int attempt) const {
    return fires(FaultKind::DmaStall, r_.dma_stall, step,
                 static_cast<std::uint64_t>(lane), xfer,
                 static_cast<std::uint64_t>(attempt));
  }
  [[nodiscard]] bool msg_drop(std::uint64_t step, int from, int to,
                              std::uint64_t seq, int attempt) const {
    return fires(FaultKind::MsgDrop, r_.msg_drop, step, key2(from, to), seq,
                 static_cast<std::uint64_t>(attempt));
  }
  [[nodiscard]] bool msg_dup(std::uint64_t step, int from, int to,
                             std::uint64_t seq) const {
    return fires(FaultKind::MsgDup, r_.msg_dup, step, key2(from, to), seq, 0);
  }
  [[nodiscard]] bool msg_delay(std::uint64_t step, int from, int to,
                               std::uint64_t seq) const {
    return fires(FaultKind::MsgDelay, r_.msg_delay, step, key2(from, to), seq, 0);
  }
  /// `salt` decorrelates the launches within one step (callers pass the
  /// CPE's own cycle count, a deterministic per-launch value).
  [[nodiscard]] bool cpe_straggle(std::uint64_t step, int cpe,
                                  std::uint64_t salt) const {
    return fires(FaultKind::CpeStraggle, r_.cpe_straggle, step,
                 static_cast<std::uint64_t>(cpe), salt, 0);
  }
  /// `generation` increments on every rollback so the replayed steps draw a
  /// fresh fault pattern and the self-healing loop converges.
  [[nodiscard]] bool numeric_kick(std::uint64_t step, int rank,
                                  std::uint64_t generation) const {
    return fires(FaultKind::NumericKick, r_.numeric_kick, step,
                 static_cast<std::uint64_t>(rank), generation, 0);
  }
  /// Whole-rank failures are keyed on (step, world rank) alone — no
  /// generation salt: once the rank is evicted it is never probed again, so
  /// a replayed step sees the identical decision for every survivor and the
  /// recovery loop converges without re-randomizing.
  [[nodiscard]] bool rank_crash(std::uint64_t step, int rank) const {
    return fires(FaultKind::RankCrash, r_.rank_crash, step,
                 static_cast<std::uint64_t>(rank), 0, 0);
  }
  [[nodiscard]] bool rank_hang(std::uint64_t step, int rank) const {
    return fires(FaultKind::RankHang, r_.rank_hang, step,
                 static_cast<std::uint64_t>(rank), 0, 0);
  }
  // --- durable-I/O faults (io/durable.cpp, io/frame_log.cpp) ---
  /// `frame` is the journal's monotonic event index.
  [[nodiscard]] bool journal_torn(std::uint64_t frame) const {
    return fires(FaultKind::JournalTorn, r_.journal_torn, frame, 0, 0, 0);
  }
  [[nodiscard]] bool journal_crc(std::uint64_t frame) const {
    return fires(FaultKind::JournalCrc, r_.journal_crc, frame, 0, 0, 0);
  }
  /// `op` is the injector's monotonic fsync-op counter, so retries draw
  /// fresh and the k-th flush of a run fails for a given seed regardless of
  /// which file it lands on.
  [[nodiscard]] bool fsync_fail(std::uint64_t op) const {
    return fires(FaultKind::FsyncFail, r_.fsync_fail, op, 0, 0, 0);
  }
  /// Deterministic, not probabilistic: the scheduler dies right after the
  /// journal append with this exact event index becomes durable.
  [[nodiscard]] bool svc_crash(std::uint64_t event) const {
    return r_.svc_crash_event >= 0 &&
           event == static_cast<std::uint64_t>(r_.svc_crash_event);
  }

  /// Raw deterministic 64-bit draw for fault payloads (which bit to flip,
  /// which particle to kick).
  [[nodiscard]] std::uint64_t draw(FaultKind kind, std::uint64_t a,
                                   std::uint64_t b, std::uint64_t c,
                                   std::uint64_t d) const {
    return hash(kind, a, b, c, d);
  }

 private:
  static std::uint64_t key2(int hi, int lo) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(hi)) << 32) |
           static_cast<std::uint32_t>(lo);
  }
  static std::uint64_t mix(std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  [[nodiscard]] std::uint64_t hash(FaultKind kind, std::uint64_t a,
                                   std::uint64_t b, std::uint64_t c,
                                   std::uint64_t d) const {
    std::uint64_t h =
        r_.seed + 0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(kind);
    h = mix(h ^ a);
    h = mix(h ^ b);
    h = mix(h ^ c);
    h = mix(h ^ d);
    return h;
  }
  [[nodiscard]] bool fires(FaultKind kind, double rate, std::uint64_t a,
                           std::uint64_t b, std::uint64_t c,
                           std::uint64_t d) const {
    if (rate <= 0.0) return false;
    if (rate >= 1.0) return true;
    const double u =
        static_cast<double>(hash(kind, a, b, c, d) >> 11) * 0x1.0p-53;
    return u < rate;
  }

  FaultRates r_;
};

/// Observability snapshot: what the fault layer saw and what recovery cost.
/// Deterministic for a given seed/rates and any pool size: counts are
/// order-independent sums, and time lost is accumulated in integer units
/// (cycles / nanoseconds) so no floating-point reduction order leaks in.
struct RecoveryStats {
  std::uint64_t dma_bitflips = 0;       ///< injected payload corruptions
  std::uint64_t dma_retries = 0;        ///< CRC-mismatch redo copies
  std::uint64_t dma_stalls = 0;
  std::uint64_t msgs_dropped = 0;
  std::uint64_t msg_retransmits = 0;
  std::uint64_t msgs_duplicated = 0;
  std::uint64_t msg_delays = 0;
  std::uint64_t cpe_stragglers = 0;
  std::uint64_t numeric_kicks = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t steps_replayed = 0;
  std::uint64_t transport_fallbacks = 0;  ///< RDMA -> MPI degradations
  std::uint64_t checkpoints_written = 0;
  std::uint64_t rank_crashes = 0;       ///< whole-rank deaths injected
  std::uint64_t rank_hangs = 0;         ///< whole-rank hangs injected
  std::uint64_t ranks_evicted = 0;      ///< ranks removed from the run
  std::uint64_t spares_promoted = 0;    ///< hot spares pressed into service
  std::uint64_t redecompositions = 0;   ///< survivor-set domain rebuilds
  std::uint64_t journal_torn_frames = 0;  ///< injected partial-frame writes
  std::uint64_t journal_crc_flips = 0;    ///< injected frame bit flips
  std::uint64_t fsync_failures = 0;       ///< injected durable-flush failures
  std::uint64_t svc_crashes = 0;          ///< injected scheduler deaths
  std::uint64_t journal_frames_dropped = 0;  ///< frames truncated at recovery
  std::uint64_t journal_events_replayed = 0; ///< events replayed at recovery
  std::uint64_t fault_cycles = 0;   ///< CPE cycles spent on checks + recovery
  std::uint64_t msg_fault_ns = 0;   ///< simulated ns spent on retransmits/spikes
  std::uint64_t detection_ns = 0;   ///< simulated ns waiting on failure detection
  std::uint64_t redecomp_ns = 0;    ///< simulated ns re-decomposing + migrating state

  /// Fold another snapshot in (service rollups: per-job injector stats
  /// summed into a fleet-wide view). Counts and integer time units add, so
  /// the merge is order-independent like the counters themselves.
  void merge(const RecoveryStats& o) {
    dma_bitflips += o.dma_bitflips;
    dma_retries += o.dma_retries;
    dma_stalls += o.dma_stalls;
    msgs_dropped += o.msgs_dropped;
    msg_retransmits += o.msg_retransmits;
    msgs_duplicated += o.msgs_duplicated;
    msg_delays += o.msg_delays;
    cpe_stragglers += o.cpe_stragglers;
    numeric_kicks += o.numeric_kicks;
    rollbacks += o.rollbacks;
    steps_replayed += o.steps_replayed;
    transport_fallbacks += o.transport_fallbacks;
    checkpoints_written += o.checkpoints_written;
    rank_crashes += o.rank_crashes;
    rank_hangs += o.rank_hangs;
    ranks_evicted += o.ranks_evicted;
    spares_promoted += o.spares_promoted;
    redecompositions += o.redecompositions;
    journal_torn_frames += o.journal_torn_frames;
    journal_crc_flips += o.journal_crc_flips;
    fsync_failures += o.fsync_failures;
    svc_crashes += o.svc_crashes;
    journal_frames_dropped += o.journal_frames_dropped;
    journal_events_replayed += o.journal_events_replayed;
    fault_cycles += o.fault_cycles;
    msg_fault_ns += o.msg_fault_ns;
    detection_ns += o.detection_ns;
    redecomp_ns += o.redecomp_ns;
  }

  [[nodiscard]] std::uint64_t faults_seen() const {
    return dma_bitflips + dma_stalls + msgs_dropped + msgs_duplicated +
           msg_delays + cpe_stragglers + numeric_kicks + rank_crashes +
           rank_hangs + journal_torn_frames + journal_crc_flips +
           fsync_failures + svc_crashes;
  }
  /// Simulated seconds charged to fault recovery and protection overhead.
  [[nodiscard]] double seconds_lost(double freq_hz = 1.45e9) const {
    return static_cast<double>(fault_cycles) / freq_hz +
           static_cast<double>(msg_fault_ns + detection_ns + redecomp_ns) *
               1e-9;
  }
};

/// Process-wide fault injector: the active plan, the current simulation step
/// (set by the run loops, keyed into every fault decision), and the
/// recovery statistics. All hot-path hooks gate on one relaxed atomic load,
/// so an unset SWGMX_FAULTS costs a single predictable branch.
class FaultInjector {
 public:
  /// The active injector: the installed one when a job context is live (see
  /// install()), otherwise the process default configured from SWGMX_FAULTS
  /// on first use. Every hook in the stack resolves through here, so
  /// swapping the installed pointer re-homes all fault decisions and
  /// recovery bookkeeping without plumbing an injector through the layers.
  [[nodiscard]] static FaultInjector& global();

  /// Swap the injector global() resolves to (nullptr restores the process
  /// default); returns the previously installed one. The service scheduler
  /// brackets every job slice with its own injector so one tenant's
  /// SWGMX_FAULTS spec cannot touch another job's trajectory or stats. The
  /// pointer is atomic; swap only from the driver thread between kernel
  /// launches (the pool join orders the handoff).
  static FaultInjector* install(FaultInjector* inj);

  /// Install a new plan and reset statistics (test hook; also the env path).
  void configure(const FaultRates& rates);
  /// configure() from a SWGMX_FAULTS-style spec (nullptr/empty disables).
  void configure_from_env(const char* spec);

  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  /// The active retry/timeout policy (SWGMX_FAULTS overrides applied).
  [[nodiscard]] const RetryPolicy& policy() const {
    return plan_.rates().policy;
  }

  void set_step(std::int64_t step) {
    step_.store(step, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t step() const {
    return static_cast<std::uint64_t>(step_.load(std::memory_order_relaxed));
  }

  // --- recovery bookkeeping (thread-safe, order-independent) ---
  void record_dma_bitflip() { bump(dma_bitflips_); }
  void record_dma_retry(double cycles) { bump(dma_retries_); add_cycles(cycles); }
  void record_dma_stall(double cycles) { bump(dma_stalls_); add_cycles(cycles); }
  void record_crc_cycles(double cycles) { add_cycles(cycles); }
  void record_msg_drop() { bump(msgs_dropped_); }
  void record_msg_retransmit(double seconds) {
    bump(msg_retransmits_);
    add_msg_seconds(seconds);
  }
  void record_msg_duplicate() { bump(msgs_duplicated_); }
  void record_msg_delay(double seconds) { bump(msg_delays_); add_msg_seconds(seconds); }
  void record_cpe_straggler(double cycles) { bump(cpe_stragglers_); add_cycles(cycles); }
  void record_numeric_kick() { bump(numeric_kicks_); }
  void record_rollback(std::uint64_t steps_replayed) {
    bump(rollbacks_);
    steps_replayed_.fetch_add(steps_replayed, std::memory_order_relaxed);
  }
  void record_transport_fallback() { bump(transport_fallbacks_); }
  void record_checkpoint() { bump(checkpoints_written_); }
  void record_rank_crash() { bump(rank_crashes_); }
  void record_rank_hang() { bump(rank_hangs_); }
  void record_rank_eviction() { bump(ranks_evicted_); }
  void record_spare_promotion() { bump(spares_promoted_); }
  void record_redecomposition(double seconds) {
    bump(redecompositions_);
    add_ns(redecomp_ns_, seconds);
  }
  void record_detection(double seconds) { add_ns(detection_ns_, seconds); }
  void record_journal_torn() { bump(journal_torn_frames_); }
  void record_journal_crc_flip() { bump(journal_crc_flips_); }
  void record_fsync_failure() { bump(fsync_failures_); }
  void record_svc_crash() { bump(svc_crashes_); }
  void record_journal_recovery(std::uint64_t frames_dropped,
                               std::uint64_t events_replayed) {
    journal_frames_dropped_.fetch_add(frames_dropped,
                                      std::memory_order_relaxed);
    journal_events_replayed_.fetch_add(events_replayed,
                                       std::memory_order_relaxed);
  }
  /// Monotonic durable-flush op counter: one draw per fsync_fail decision
  /// (io/durable.cpp). Reset by configure() so runs are reproducible.
  [[nodiscard]] std::uint64_t next_fsync_op() {
    return fsync_ops_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] RecoveryStats snapshot() const;
  void reset_stats();

 private:
  using Counter = std::atomic<std::uint64_t>;
  static void bump(Counter& c) { c.fetch_add(1, std::memory_order_relaxed); }
  void add_cycles(double cycles);
  void add_msg_seconds(double seconds);
  static void add_ns(Counter& c, double seconds);

  FaultPlan plan_;
  std::atomic<bool> enabled_{false};
  std::atomic<std::int64_t> step_{0};

  Counter dma_bitflips_{0}, dma_retries_{0}, dma_stalls_{0};
  Counter msgs_dropped_{0}, msg_retransmits_{0}, msgs_duplicated_{0}, msg_delays_{0};
  Counter cpe_stragglers_{0}, numeric_kicks_{0};
  Counter rollbacks_{0}, steps_replayed_{0};
  Counter transport_fallbacks_{0}, checkpoints_written_{0};
  Counter rank_crashes_{0}, rank_hangs_{0}, ranks_evicted_{0};
  Counter spares_promoted_{0}, redecompositions_{0};
  Counter journal_torn_frames_{0}, journal_crc_flips_{0};
  Counter fsync_failures_{0}, svc_crashes_{0};
  Counter journal_frames_dropped_{0}, journal_events_replayed_{0};
  Counter fsync_ops_{0};
  Counter fault_cycles_{0}, msg_fault_ns_{0};
  Counter detection_ns_{0}, redecomp_ns_{0};
};

}  // namespace swgmx::sw
