#include "sw/core_group.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/thread_pool.hpp"
#include "sw/fault.hpp"

namespace swgmx::sw {

CoreGroup::CoreGroup(SwConfig cfg) : cfg_(cfg) {}

LdmArena& CoreGroup::thread_arena() {
  const std::thread::id me = std::this_thread::get_id();
  std::lock_guard<std::mutex> lk(arena_mu_);
  auto& slot = arenas_[me];
  if (!slot) slot = std::make_unique<LdmArena>(cfg_.ldm_bytes);
  return *slot;
}

KernelStats CoreGroup::run_collect(const std::function<void(CpeContext&)>& kernel,
                                   double dma_overlap) {
  const int n = cfg_.cpe_count;
  // Per-CPE counters land in private slots; the reduction below walks them
  // in CPE-id order so stats are bit-identical for any thread count.
  std::vector<PerfCounters> perf(static_cast<std::size_t>(n));
  common::ThreadPool::global().parallel_for(n, [&](int id) {
    LdmArena& arena = thread_arena();
    arena.reset();
    CpeContext ctx(id, cfg_, arena);
    kernel(ctx);
    perf[static_cast<std::size_t>(id)] = ctx.perf();
  });

  // Straggler injection happens post-join, in CPE-id order, salted by the
  // CPE's own (deterministic) cycle count — so the inflated critical path is
  // identical for every host pool size.
  FaultInjector& inj = FaultInjector::global();
  if (inj.enabled()) {
    const std::uint64_t step = inj.step();
    for (int id = 0; id < n; ++id) {
      auto& pc = perf[static_cast<std::size_t>(id)];
      const auto salt = static_cast<std::uint64_t>(std::llround(pc.total_cycles()));
      if (inj.plan().cpe_straggle(step, id, salt)) {
        const double extra = kStragglerSlowdown * pc.total_cycles();
        pc.compute_cycles += extra;
        inj.record_cpe_straggler(extra);
      }
    }
  }

  KernelStats stats;
  stats.min_cycles = std::numeric_limits<double>::infinity();
  for (int id = 0; id < n; ++id) {
    const auto& pc = perf[static_cast<std::size_t>(id)];
    const double cyc = pc.overlapped_cycles(dma_overlap);
    stats.max_cycles = std::max(stats.max_cycles, cyc);
    stats.min_cycles = std::min(stats.min_cycles, cyc);
    stats.total += pc;
  }
  if (n == 0) stats.min_cycles = 0.0;
  stats.sim_seconds = cfg_.seconds(stats.max_cycles);
  return stats;
}

KernelStats CoreGroup::run(const std::function<void(CpeContext&)>& kernel,
                           double dma_overlap) {
  const KernelStats stats = run_collect(kernel, dma_overlap);
  add_lifetime(stats.total);
  return stats;
}

void CoreGroup::add_lifetime(const PerfCounters& pc) {
  std::lock_guard<std::mutex> lk(lifetime_mu_);
  lifetime_ += pc;
}

double CoreGroup::mpe_seconds(double ops, double mem_ops) const {
  const double cycles = ops * cfg_.mpe_op_penalty +
                        mem_ops * cfg_.mpe_miss_rate * cfg_.mpe_miss_latency_cycles;
  return cfg_.seconds(cycles);
}

}  // namespace swgmx::sw
