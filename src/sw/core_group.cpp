#include "sw/core_group.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sw/fault.hpp"

namespace swgmx::sw {

CoreGroup::CoreGroup(SwConfig cfg) : cfg_(cfg) {}

LdmArena& CoreGroup::thread_arena() {
  const std::thread::id me = std::this_thread::get_id();
  std::lock_guard<std::mutex> lk(arena_mu_);
  auto& slot = arenas_[me];
  if (!slot) slot = std::make_unique<LdmArena>(cfg_.ldm_bytes);
  return *slot;
}

KernelStats CoreGroup::run_impl(const std::function<void(CpeContext&)>& kernel,
                                double dma_overlap,
                                std::vector<obs::CpeKernelLog>* logs,
                                std::vector<PerfCounters>* per_cpe) {
  const int n = cfg_.cpe_count;
  // Per-CPE counters land in private slots; the reduction below walks them
  // in CPE-id order so stats are bit-identical for any thread count.
  std::vector<PerfCounters> perf(static_cast<std::size_t>(n));
  common::ThreadPool::global().parallel_for(n, [&](int id) {
    LdmArena& arena = thread_arena();
    arena.reset();
    CpeContext ctx(id, cfg_, arena);
    if (logs != nullptr) ctx.set_trace_log(&(*logs)[static_cast<std::size_t>(id)]);
    kernel(ctx);
    ctx.dma_pipeline_drain();
    perf[static_cast<std::size_t>(id)] = ctx.perf();
  });

  // Straggler injection happens post-join, in CPE-id order, salted by the
  // CPE's own (deterministic) cycle count — so the inflated critical path is
  // identical for every host pool size.
  FaultInjector& inj = FaultInjector::global();
  if (inj.enabled()) {
    const std::uint64_t step = inj.step();
    for (int id = 0; id < n; ++id) {
      auto& pc = perf[static_cast<std::size_t>(id)];
      const auto salt = static_cast<std::uint64_t>(std::llround(pc.total_cycles()));
      if (inj.plan().cpe_straggle(step, id, salt)) {
        const double extra = kStragglerSlowdown * pc.total_cycles();
        pc.compute_cycles += extra;
        inj.record_cpe_straggler(extra);
        if (logs != nullptr)
          (*logs)[static_cast<std::size_t>(id)].straggle_cycles = extra;
      }
    }
  }

  KernelStats stats;
  stats.min_cycles = std::numeric_limits<double>::infinity();
  const CpePartition part = part_;
  const bool packed = part.active() && part.count < n;
  if (packed) {
    // Partitioned launch: pack the n virtual invocations onto part.count
    // physical slots in fixed id order; the critical path is the busiest
    // slot's summed pipelined cycles.
    std::vector<double> slot(static_cast<std::size_t>(part.count), 0.0);
    for (int id = 0; id < n; ++id) {
      const auto& pc = perf[static_cast<std::size_t>(id)];
      slot[static_cast<std::size_t>(id % part.count)] +=
          pc.overlapped_cycles(dma_overlap);
      stats.total += pc;
    }
    for (const double cyc : slot) {
      stats.max_cycles = std::max(stats.max_cycles, cyc);
      stats.min_cycles = std::min(stats.min_cycles, cyc);
    }
  } else {
    for (int id = 0; id < n; ++id) {
      const auto& pc = perf[static_cast<std::size_t>(id)];
      const double cyc = pc.overlapped_cycles(dma_overlap);
      stats.max_cycles = std::max(stats.max_cycles, cyc);
      stats.min_cycles = std::min(stats.min_cycles, cyc);
      stats.total += pc;
    }
  }
  if (n == 0) stats.min_cycles = 0.0;
  stats.sim_seconds = cfg_.seconds(stats.max_cycles);
  if (per_cpe != nullptr) *per_cpe = std::move(perf);
  return stats;
}

KernelStats CoreGroup::run_collect(const std::function<void(CpeContext&)>& kernel,
                                   double dma_overlap) {
  return run_impl(kernel, dma_overlap, nullptr, nullptr);
}

namespace {

const char* dma_op_name(char op) {
  switch (op) {
    case 'g': return "dma_get";
    case 'p': return "dma_put";
    case 'G': return "dma_get_2d";
    case 'P': return "dma_put_2d";
    default: return "dma";
  }
}

/// Flush one launch's per-CPE staging logs into the trace, in CPE-id order.
/// Each CPE gets a kernel span of its own *overlapped* cycles starting at
/// the launch time `t0_ns`; DMA events are drawn on that pipelined timeline
/// (within-kernel positions scaled by overlapped/total) so they nest inside
/// the span, while their args carry the unscaled cycle costs.
void flush_launch_trace(obs::TraceSession& tr, const SwConfig& cfg,
                        const CpePartition& part, const char* label,
                        double t0_ns, double dma_overlap,
                        const std::vector<obs::CpeKernelLog>& logs,
                        const std::vector<PerfCounters>& per_cpe,
                        const KernelStats& stats) {
  const double ns_per_cycle = 1e9 / cfg.freq_hz;
  auto& dma_hist = obs::MetricsRegistry::global().histogram(
      "dma/transfer_bytes", Histogram::exponential(8.0, 2.0, 13));
  // Partitioned launches pack the virtual invocations onto the slice's
  // physical slots: each slot's spans stack sequentially from t0 so its
  // track mirrors the packed cost model (no double-charged intervals).
  const bool packed = part.active() && part.count < cfg.cpe_count;
  std::vector<double> slot_base(
      packed ? static_cast<std::size_t>(part.count) : 0, 0.0);
  for (int id = 0; id < cfg.cpe_count; ++id) {
    const int lane = packed ? id % part.count : id;
    const int slot = packed ? part.offset + lane : id;
    tr.set_thread_name(obs::kPidSim, obs::cpe_tid(slot),
                       "CPE " + std::to_string(slot));
    const auto& pc = per_cpe[static_cast<std::size_t>(id)];
    const double total = pc.total_cycles();
    const double overlapped = pc.overlapped_cycles(dma_overlap);
    const double scale = total > 0.0 ? overlapped / total : 1.0;
    const double span_t0 =
        packed ? t0_ns + slot_base[static_cast<std::size_t>(lane)] : t0_ns;
    const double span_dur = overlapped * ns_per_cycle;
    {
      std::ostringstream args;
      args << "{\"compute_cycles\":" << obs::json_number(pc.compute_cycles)
           << ",\"mem_cycles\":"
           << obs::json_number(pc.dma_cycles + pc.gld_cycles)
           << ",\"dma_bytes\":" << pc.dma_bytes
           << ",\"hidden_dma_cycles\":"
           << obs::json_number(pc.hidden_dma_cycles) << "}";
      tr.complete(obs::kPidSim, obs::cpe_tid(slot), label, span_t0, span_dur,
                  args.str());
    }
    for (const auto& d : logs[static_cast<std::size_t>(id)].dma) {
      dma_hist.observe(static_cast<double>(d.bytes));
      // DMA record cycle marks were taken at issue time; pipeline refunds can
      // shrink the kernel span below them, so clamp into [0, span_dur].
      const double ds =
          std::clamp(d.start_cycles * scale * ns_per_cycle, 0.0, span_dur);
      const double de =
          std::clamp(d.end_cycles * scale * ns_per_cycle, ds, span_dur);
      std::ostringstream args;
      args << "{\"bytes\":" << d.bytes << ",\"rows\":" << d.rows
           << ",\"retries\":" << d.retries << "}";
      tr.complete(obs::kPidSim, obs::cpe_tid(slot), dma_op_name(d.op),
                  span_t0 + ds, de - ds, args.str());
      if (d.retries != 0) {
        std::ostringstream rargs;
        rargs << "{\"retries\":" << d.retries << ",\"bytes\":" << d.bytes << "}";
        tr.instant(obs::kPidSim, obs::cpe_tid(slot), "dma_crc_retry",
                   span_t0 + de, rargs.str());
      }
    }
    const double straggle = logs[static_cast<std::size_t>(id)].straggle_cycles;
    if (straggle > 0.0) {
      std::ostringstream args;
      args << "{\"extra_cycles\":" << obs::json_number(straggle) << "}";
      tr.instant(obs::kPidSim, obs::cpe_tid(slot), "cpe_straggler",
                 span_t0 + span_dur, args.str());
    }
    if (packed) slot_base[static_cast<std::size_t>(lane)] += span_dur;
  }
  // MPE-side launch span covering the kernel's critical path. Partitioned
  // launches (and any launch running under an MPE redirect) land on their
  // kernel-stream track so concurrent streams stay on separate tracks.
  const int active = part.active() ? part.count : cfg.cpe_count;
  int launch_tid = tr.mpe_tid();
  if (part.active()) {
    launch_tid = obs::stream_tid(part.stream);
    tr.set_thread_name(obs::kPidSim, launch_tid,
                       std::string("stream ") + part.name);
  }
  std::ostringstream args;
  args << "{\"sim_seconds\":" << obs::json_number(stats.sim_seconds)
       << ",\"imbalance\":" << obs::json_number(stats.imbalance(active))
       << "}";
  tr.complete(obs::kPidSim, launch_tid, label, t0_ns, stats.sim_seconds * 1e9,
              args.str());
}

/// Per-label kernel metrics (always on): the overlapped_cycles inputs —
/// compute vs memory cycles — plus sim time, traffic and launch count, so
/// the pipeline-overlap claim is checkable from one metrics snapshot.
void record_kernel_metrics(const char* label, const SwConfig& cfg,
                           const KernelStats& stats) {
  auto& m = obs::MetricsRegistry::global();
  const std::string prefix = std::string("kernel/") + label;
  m.counter_add(prefix + "/launches", 1.0);
  m.counter_add(prefix + "/compute_cycles", stats.total.compute_cycles);
  m.counter_add(prefix + "/mem_cycles",
                stats.total.dma_cycles + stats.total.gld_cycles);
  m.counter_add(prefix + "/sim_seconds", stats.sim_seconds);
  m.counter_add(prefix + "/dma_bytes",
                static_cast<double>(stats.total.dma_bytes));
  if (stats.total.hidden_dma_cycles > 0.0) {
    m.counter_add(prefix + "/hidden_dma_cycles",
                  stats.total.hidden_dma_cycles);
    // Aggregate CPE-seconds of transfer time the double-buffer pipeline hid
    // (summed over CPEs, not critical-path time).
    m.counter_add("overlap/dma_hidden_seconds",
                  cfg.seconds(stats.total.hidden_dma_cycles));
  }
}

}  // namespace

KernelStats CoreGroup::run(const std::function<void(CpeContext&)>& kernel,
                           double dma_overlap, const char* label) {
  obs::TraceSession& tr = obs::TraceSession::global();
  if (!tr.enabled()) {
    const KernelStats stats = run_impl(kernel, dma_overlap, nullptr, nullptr);
    add_lifetime(stats.total);
    record_kernel_metrics(label, cfg_, stats);
    return stats;
  }

  const int n = cfg_.cpe_count;
  std::vector<obs::CpeKernelLog> logs(static_cast<std::size_t>(n));
  std::vector<PerfCounters> per_cpe;
  const double t0 = tr.now_ns();
  const KernelStats stats = run_impl(kernel, dma_overlap, &logs, &per_cpe);
  add_lifetime(stats.total);
  record_kernel_metrics(label, cfg_, stats);
  flush_launch_trace(tr, cfg_, part_, label, t0, dma_overlap, logs, per_cpe,
                     stats);
  tr.advance_seconds(stats.sim_seconds);
  return stats;
}

void CoreGroup::add_lifetime(const PerfCounters& pc) {
  std::lock_guard<std::mutex> lk(lifetime_mu_);
  lifetime_ += pc;
}

double CoreGroup::mpe_seconds(double ops, double mem_ops) const {
  const double cycles = ops * cfg_.mpe_op_penalty +
                        mem_ops * cfg_.mpe_miss_rate * cfg_.mpe_miss_latency_cycles;
  return cfg_.seconds(cycles);
}

}  // namespace swgmx::sw
