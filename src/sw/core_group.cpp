#include "sw/core_group.hpp"

#include <algorithm>
#include <limits>

namespace swgmx::sw {

CoreGroup::CoreGroup(SwConfig cfg) : cfg_(cfg) {
  arenas_.reserve(static_cast<std::size_t>(cfg_.cpe_count));
  for (int i = 0; i < cfg_.cpe_count; ++i) arenas_.emplace_back(cfg_.ldm_bytes);
}

KernelStats CoreGroup::run(const std::function<void(CpeContext&)>& kernel,
                           double dma_overlap) {
  KernelStats stats;
  stats.min_cycles = std::numeric_limits<double>::infinity();
  for (int id = 0; id < cfg_.cpe_count; ++id) {
    arenas_[static_cast<std::size_t>(id)].reset();
    CpeContext ctx(id, cfg_, arenas_[static_cast<std::size_t>(id)]);
    kernel(ctx);
    const double cyc = ctx.perf().overlapped_cycles(dma_overlap);
    stats.max_cycles = std::max(stats.max_cycles, cyc);
    stats.min_cycles = std::min(stats.min_cycles, cyc);
    stats.total += ctx.perf();
  }
  if (cfg_.cpe_count == 0) stats.min_cycles = 0.0;
  stats.sim_seconds = cfg_.seconds(stats.max_cycles);
  lifetime_ += stats.total;
  return stats;
}

double CoreGroup::mpe_seconds(double ops, double mem_ops) const {
  const double cycles = ops * cfg_.mpe_op_penalty +
                        mem_ops * cfg_.mpe_miss_rate * cfg_.mpe_miss_latency_cycles;
  return cfg_.seconds(cycles);
}

}  // namespace swgmx::sw
