// Simulated-cost counters. Every memory/compute action in the simulator is
// charged here; benches report simulated time, never host wall-clock.
#pragma once

#include <algorithm>
#include <map>
#include <string>

#include "sw/config.hpp"

namespace swgmx::sw {

/// Per-CPE (or per-MPE) cost counters, in simulated cycles plus raw event
/// counts so benches can report bandwidths and hit rates.
struct PerfCounters {
  double compute_cycles = 0.0;
  double dma_cycles = 0.0;
  double gld_cycles = 0.0;
  /// DMA cycles refunded by the double-buffer pipeline (DESIGN.md §2.10):
  /// already subtracted from `dma_cycles`, kept separately so benches can
  /// report how much transfer time the pipeline hid. Not part of
  /// total_cycles().
  double hidden_dma_cycles = 0.0;

  std::uint64_t dma_transfers = 0;
  std::uint64_t dma_bytes = 0;
  std::uint64_t gld_count = 0;
  std::uint64_t gst_count = 0;

  // Software-cache statistics (filled by core::PackageReadCache /
  // core::ForceWriteCache).
  std::uint64_t read_hits = 0;
  std::uint64_t read_misses = 0;
  std::uint64_t write_hits = 0;
  std::uint64_t write_misses = 0;

  [[nodiscard]] double total_cycles() const {
    return compute_cycles + dma_cycles + gld_cycles;
  }
  /// Cycles when a fraction `overlap` of the shorter of {compute, memory}
  /// hides behind the longer (double-buffered DMA pipelining; the paper's
  /// "full pipeline acceleration"). overlap = 0 degenerates to the sum.
  [[nodiscard]] double overlapped_cycles(double overlap) const {
    const double mem = dma_cycles + gld_cycles;
    const double hi = std::max(compute_cycles, mem);
    const double lo = std::min(compute_cycles, mem);
    return hi + (1.0 - overlap) * lo;
  }
  [[nodiscard]] static double rate(std::uint64_t miss, std::uint64_t hit) {
    const auto n = miss + hit;
    return n == 0 ? 0.0 : static_cast<double>(miss) / static_cast<double>(n);
  }
  [[nodiscard]] double read_miss_rate() const { return rate(read_misses, read_hits); }
  [[nodiscard]] double write_miss_rate() const { return rate(write_misses, write_hits); }
  /// Combined software-cache miss rate (the paper's "<15%" claim covers both).
  [[nodiscard]] double cache_miss_rate() const {
    return rate(read_misses + write_misses, read_hits + write_hits);
  }
  /// Effective DMA bandwidth achieved (bytes per simulated second).
  [[nodiscard]] double dma_effective_bw(const SwConfig& cfg) const {
    return dma_cycles == 0.0 ? 0.0
                             : static_cast<double>(dma_bytes) / cfg.seconds(dma_cycles);
  }

  PerfCounters& operator+=(const PerfCounters& o);
};

/// Named phase -> simulated seconds, used for the Table 1 breakdown and the
/// Fig 10 whole-application ladder.
class PhaseTimers {
 public:
  void add(const std::string& phase, double seconds) { seconds_[phase] += seconds; }
  [[nodiscard]] double get(const std::string& phase) const;
  [[nodiscard]] double total() const;
  [[nodiscard]] const std::map<std::string, double>& phases() const { return seconds_; }
  void clear() { seconds_.clear(); }
  PhaseTimers& operator+=(const PhaseTimers& o);

 private:
  std::map<std::string, double> seconds_;
};

}  // namespace swgmx::sw
