// CoreGroup: one MPE + 64 CPEs. Launches CPE kernels (functionally executed,
// cost-model accounted) and models MPE-side work.
//
// Execution is sequential over CPEs: with independent per-CPE counters the
// simulated time of a kernel is max over CPEs of that CPE's cycles, which is
// identical whether the host runs them concurrently or not — and sequential
// execution keeps the simulator deterministic and race-free by construction.
#pragma once

#include <functional>
#include <vector>

#include "sw/cpe.hpp"

namespace swgmx::sw {

/// Result of one CPE-kernel launch.
struct KernelStats {
  double sim_seconds = 0.0;   ///< max over CPEs (the kernel's critical path)
  double max_cycles = 0.0;
  double min_cycles = 0.0;
  PerfCounters total;         ///< summed over all CPEs

  /// Load imbalance: max/mean cycles (1.0 = perfectly balanced).
  [[nodiscard]] double imbalance(int cpe_count) const {
    const double mean = total.total_cycles() / cpe_count;
    return mean == 0.0 ? 1.0 : max_cycles / mean;
  }
};

/// One SW26010 core group.
class CoreGroup {
 public:
  explicit CoreGroup(SwConfig cfg = {});

  /// Launch `kernel` on all CPEs (athread_spawn + join). Each CPE's LDM is
  /// reset before the launch, matching static per-kernel LDM partitioning.
  /// `dma_overlap` in [0, 1] models double-buffered pipelining: that
  /// fraction of min(compute, memory) cycles hides behind the other.
  KernelStats run(const std::function<void(CpeContext&)>& kernel,
                  double dma_overlap = 0.0);

  /// Model the MPE executing `ops` arithmetic ops and `mem_ops` memory
  /// references (a fraction of which miss to DDR3). Returns simulated
  /// seconds. Used for the Ori baseline and MPE-side serial phases.
  [[nodiscard]] double mpe_seconds(double ops, double mem_ops) const;

  [[nodiscard]] const SwConfig& config() const { return cfg_; }

  /// Cumulative counters across every kernel launched on this core group.
  [[nodiscard]] const PerfCounters& lifetime() const { return lifetime_; }
  void reset_lifetime() { lifetime_ = {}; }

 private:
  SwConfig cfg_;
  std::vector<LdmArena> arenas_;
  PerfCounters lifetime_;
};

}  // namespace swgmx::sw
