// CoreGroup: one MPE + 64 CPEs. Launches CPE kernels (functionally executed,
// cost-model accounted) and models MPE-side work.
//
// Execution model: the 64 CPE kernel invocations of a launch are dispatched
// across host threads by the deterministic thread pool
// (common/thread_pool.hpp, sized by SWGMX_THREADS). This is safe and
// bit-reproducible because kernels honor a per-CPE-output contract: every
// CPE writes only its own staging buffers (its LDM arena, its force-copy
// array, its energy slot, its pair-list rows), and the launcher reduces the
// per-CPE results in fixed CPE-id order after the join. Simulated cycles,
// forces and energies are therefore identical for any pool size — the
// simulated time of a kernel is max over CPEs of that CPE's cycles, which
// does not depend on how the host schedules them. SWGMX_THREADS=1 recovers
// the plain sequential loop.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "sw/cpe.hpp"

namespace swgmx::sw {

/// A contiguous slice of the CPE mesh running one kernel stream while the
/// complement runs another (overlap engine, DESIGN.md §2.10). Partitioning
/// is pure cost packing: all cpe_count virtual CPE invocations still execute
/// with unchanged physics (bit-identity is trivial), but virtual CPE v is
/// charged to physical slot offset + (v % count) and the launch's critical
/// path becomes the max over slots of their summed cycles — the throughput
/// of the smaller mesh.
struct CpePartition {
  int offset = 0;          ///< first physical CPE of the slice
  int count = 0;           ///< physical CPEs in the slice (0 = whole mesh)
  int stream = 0;          ///< kernel-stream index (selects the trace track)
  const char* name = "";   ///< stream label ("sr", "pme")
  [[nodiscard]] bool active() const { return count > 0; }
};

/// Result of one CPE-kernel launch.
struct KernelStats {
  double sim_seconds = 0.0;   ///< max over CPEs (the kernel's critical path)
  double max_cycles = 0.0;
  double min_cycles = 0.0;
  PerfCounters total;         ///< summed over all CPEs (in CPE-id order)

  /// Load imbalance: max/mean cycles (1.0 = perfectly balanced).
  [[nodiscard]] double imbalance(int cpe_count) const {
    const double mean = total.total_cycles() / cpe_count;
    return mean == 0.0 ? 1.0 : max_cycles / mean;
  }
};

/// One SW26010 core group.
class CoreGroup {
 public:
  explicit CoreGroup(SwConfig cfg = {});

  /// Launch `kernel` on all CPEs (athread_spawn + join), dispatching the
  /// per-CPE invocations across the global host thread pool. Each CPE's LDM
  /// is reset before its invocation, matching static per-kernel LDM
  /// partitioning. `dma_overlap` in [0, 1] models double-buffered
  /// pipelining: that fraction of min(compute, memory) cycles hides behind
  /// the other. Folds the launch's counters into lifetime().
  ///
  /// `label` names the launch for observability: it becomes the span name
  /// on every CPE trace track, the MPE-track launch span, and the
  /// "kernel/<label>/..." metric family (launches, compute vs memory
  /// cycles, sim seconds, DMA bytes). Only this sequential driver path is
  /// traced — concurrent launchers go through run_collect(), which stays
  /// out of the trace so event order never depends on host scheduling.
  KernelStats run(const std::function<void(CpeContext&)>& kernel,
                  double dma_overlap = 0.0, const char* label = "kernel");

  /// Same as run() but does NOT touch lifetime(). Callers that launch
  /// kernels concurrently from several host threads (e.g. the rank-parallel
  /// pair-list search) use this and apply add_lifetime() in a fixed order
  /// after joining, so the lifetime counters stay bit-reproducible.
  KernelStats run_collect(const std::function<void(CpeContext&)>& kernel,
                          double dma_overlap = 0.0);

  /// Fold one launch's summed counters into lifetime(). Thread-safe; for
  /// bit-stable totals call it in a deterministic order.
  void add_lifetime(const PerfCounters& pc);

  /// Model the MPE executing `ops` arithmetic ops and `mem_ops` memory
  /// references (a fraction of which miss to DDR3). Returns simulated
  /// seconds. Used for the Ori baseline and MPE-side serial phases.
  [[nodiscard]] double mpe_seconds(double ops, double mem_ops) const;

  [[nodiscard]] const SwConfig& config() const { return cfg_; }

  /// Restrict subsequent launches to a slice of the mesh (cost packing, see
  /// CpePartition). Set/cleared by the sequential step driver only; an
  /// inactive partition (the default) charges the whole mesh.
  void set_partition(const CpePartition& p) { part_ = p; }
  void clear_partition() { part_ = {}; }
  [[nodiscard]] const CpePartition& partition() const { return part_; }

  /// Cumulative counters across every kernel launched on this core group.
  /// Read between launches (not while a launch is in flight).
  [[nodiscard]] const PerfCounters& lifetime() const { return lifetime_; }
  void reset_lifetime() {
    std::lock_guard<std::mutex> lk(lifetime_mu_);
    lifetime_ = {};
  }

 private:
  /// Shared launch path. When `logs`/`per_cpe` are non-null (tracing), each
  /// CPE's DMA events and final counters are captured in its own slot —
  /// same per-CPE-output contract as the kernel results themselves.
  KernelStats run_impl(const std::function<void(CpeContext&)>& kernel,
                       double dma_overlap, std::vector<obs::CpeKernelLog>* logs,
                       std::vector<PerfCounters>* per_cpe);

  /// The LDM arena for the calling host thread. Arenas model scratchpad
  /// state that is reset at every CPE invocation, so they are keyed by
  /// execution lane (host thread), not by CPE id: concurrent launches on
  /// the same CoreGroup (nested rank/CPE parallelism) each get private
  /// scratch, and the kernel's observable behavior is arena-independent.
  [[nodiscard]] LdmArena& thread_arena();

  SwConfig cfg_;
  CpePartition part_;
  std::mutex arena_mu_;
  std::unordered_map<std::thread::id, std::unique_ptr<LdmArena>> arenas_;
  std::mutex lifetime_mu_;
  PerfCounters lifetime_;
};

}  // namespace swgmx::sw
