// SW26010 core-group architecture parameters.
//
// One SW26010 chip has 4 core groups (CGs). Each CG = 1 MPE (management
// processing element, a conventional core) + 64 CPEs (compute processing
// elements) in an 8x8 mesh. Each CPE has 64 KB of software-managed local
// device memory (LDM) and reaches main memory either by DMA (fast for large
// contiguous blocks) or by global load/store (gld/gst, ~280 cycle latency).
//
// The numbers below come from the paper (Table 2 DMA curve, 1.45 GHz clock)
// and from published SW26010 micro-benchmarks (gld/gst latency).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace swgmx::sw {

/// One (access size, effective bandwidth) sample of the DMA curve.
struct DmaSample {
  std::size_t bytes;
  double gb_per_s;
};

/// Architecture constants for one core group. All cost accounting in the
/// simulator derives from this struct; tests construct variants to probe the
/// model.
struct SwConfig {
  // --- topology ---
  int cpe_count = 64;          ///< 8x8 CPE mesh per core group
  int cpe_mesh_dim = 8;
  std::size_t ldm_bytes = 64 * 1024;  ///< LDM per CPE

  // --- clocks ---
  double freq_hz = 1.45e9;     ///< CPE/MPE clock

  // --- DMA model (Table 2 of the paper) ---
  // Effective *per-core-group* bandwidth as measured on TaihuLight with all
  // CPEs issuing, *including* startup effects — which is why 8 B transfers
  // only reach 0.99 GB/s in aggregate (each transfer is latency-bound).
  std::array<DmaSample, 5> dma_curve{{
      {8, 0.99}, {128, 15.77}, {256, 28.88}, {512, 28.98}, {2048, 30.48}}};
  // Number of CPEs sharing the curve: one CPE's transfer of n bytes costs
  // n / (bw(n) / dma_concurrency) — kernels always run all 64 CPEs.
  int dma_concurrency = 64;

  // --- global load/store model ---
  double gld_latency_cycles = 278.0;  ///< one gld from DDR3 into a CPE register
  double gst_latency_cycles = 278.0;

  // --- CPE compute model ---
  // Scalar FP op: 1 issue slot. 256-bit vector op: 1 issue slot covering 4
  // float lanes. Divide/sqrt are unpipelined and much slower.
  double cpe_flop_cycles = 1.0;
  double cpe_vec_op_cycles = 1.0;   ///< one floatv4 op (4 lanes)
  double cpe_div_cycles = 30.0;     ///< scalar divide + rsqrt Newton chain
  double cpe_vec_div_cycles = 34.0; ///< vector divide (unpipelined, 4 lanes)
  double cpe_shuffle_cycles = 1.0;  ///< simd_vshuff

  // --- MPE model ---
  // The MPE is a conventional dual-issue core (~1.7 ops/cycle sustained on
  // the scalar kernel) with a hardware cache whose misses stall it.
  // Ori-on-MPE is the paper's 1x baseline; these two constants are the
  // calibration knobs that anchor the Fig 8 ladder (see DESIGN.md §3).
  double mpe_op_penalty = 0.75;            ///< cycles per scalar op
  double mpe_miss_latency_cycles = 140.0;  ///< DDR3 access from MPE
  double mpe_miss_rate = 0.015;            ///< L1+L2 combined miss per mem op

  /// Effective DMA bandwidth (bytes/s) for a transfer of `bytes`, by
  /// piecewise-linear interpolation of `dma_curve` (clamped at the ends).
  [[nodiscard]] double dma_bandwidth(std::size_t bytes) const;

  /// Simulated cycles for one DMA transfer of `bytes`.
  [[nodiscard]] double dma_cycles(std::size_t bytes) const;

  /// Convert simulated cycles to seconds at the configured clock.
  [[nodiscard]] double seconds(double cycles) const { return cycles / freq_hz; }
};

// --- overlap engine switch (DESIGN.md §2.10) ---
// Global because it selects a *cost model*, not physics: with overlap on,
// kernels charge explicitly pipelined DMA, the step runs as a task graph and
// the CPE mesh can split into concurrent partitions. Physics is computed in
// the same fixed order either way, so trajectories are bit-identical across
// the switch; only the simulated clock and trace change.

/// True when the asynchronous overlap engine is active. Defaults to the
/// SWGMX_OVERLAP environment switch (unset or anything but "0" = on).
[[nodiscard]] bool overlap_enabled();
/// Override the SWGMX_OVERLAP default (tests and A/B drivers).
void set_overlap_enabled(bool on);

}  // namespace swgmx::sw
