#include "sw/dma.hpp"

#include <cstring>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "sw/fault.hpp"

namespace swgmx::sw {

void DmaEngine::charge(std::size_t bytes, PerfCounters& pc) const {
  pc.dma_cycles += cfg_->dma_cycles(bytes);
  pc.dma_transfers += 1;
  pc.dma_bytes += bytes;
}

void DmaEngine::transfer(void* dst, const void* src, std::size_t bytes,
                         PerfCounters& pc) const {
  SWGMX_CHECK_MSG(bytes > 0, "zero-byte DMA transfer");
  SWGMX_CHECK_MSG(bytes <= cfg_->ldm_bytes,
                  "DMA transfer of " << bytes << " B exceeds the "
                                     << cfg_->ldm_bytes << " B LDM budget");

  FaultInjector& inj = FaultInjector::global();
  if (!inj.enabled()) {
    std::memcpy(dst, src, bytes);
    charge(bytes, pc);
    return;
  }

  // Faulted path: the payload is protected by a CRC32 check charged to the
  // CPE; a mismatch (injected bit flip) redoes the transfer, bounded by
  // RetryPolicy::max_dma_retries. Fault keys are (step, CPE lane, per-CPE
  // transfer index, attempt) — pure data, so any host schedule sees the
  // same faults.
  const FaultPlan& plan = inj.plan();
  const int max_retries = inj.policy().max_dma_retries;
  const std::uint64_t step = inj.step();
  const std::uint64_t xfer = pc.dma_transfers;
  for (int attempt = 0;; ++attempt) {
    SWGMX_CHECK_MSG(attempt <= max_retries,
                    "DMA CRC retry budget exhausted ("
                        << max_retries << " retries, " << bytes
                        << " B transfer on CPE " << lane_ << " at step "
                        << step << ")");
    std::memcpy(dst, src, bytes);
    charge(bytes, pc);
    if (plan.dma_stall(step, lane_, xfer, attempt)) {
      const double stall = kDmaStallPenalty * cfg_->dma_cycles(bytes);
      pc.dma_cycles += stall;
      inj.record_dma_stall(stall);
    }
    if (plan.dma_flip(step, lane_, xfer, attempt)) {
      const std::uint64_t d =
          plan.draw(FaultKind::DmaFlip, step,
                    static_cast<std::uint64_t>(lane_) ^ 0xB17F11Bull, xfer,
                    static_cast<std::uint64_t>(attempt));
      const std::size_t bit = d % (bytes * 8);
      static_cast<unsigned char*>(dst)[bit / 8] ^=
          static_cast<unsigned char>(1u << (bit % 8));
      inj.record_dma_bitflip();
    }
    const double crc_cycles = 2.0 * kCrcCyclesPerByte * static_cast<double>(bytes);
    pc.compute_cycles += crc_cycles;
    inj.record_crc_cycles(crc_cycles);
    if (common::crc32(dst, bytes) == common::crc32(src, bytes)) return;
    inj.record_dma_retry(cfg_->dma_cycles(bytes));
  }
}

void DmaEngine::get(void* ldm_dst, const void* mem_src, std::size_t bytes,
                    PerfCounters& pc) const {
  transfer(ldm_dst, mem_src, bytes, pc);
}

void DmaEngine::put(void* mem_dst, const void* ldm_src, std::size_t bytes,
                    PerfCounters& pc) const {
  transfer(mem_dst, ldm_src, bytes, pc);
}

void DmaEngine::get_2d(void* ldm_dst, const void* mem_src, std::size_t rows,
                       std::size_t row_bytes, std::size_t mem_pitch,
                       std::size_t ldm_pitch, PerfCounters& pc) const {
  SWGMX_CHECK_MSG(rows > 0, "zero-row 2-D DMA transfer");
  auto* dst = static_cast<unsigned char*>(ldm_dst);
  const auto* src = static_cast<const unsigned char*>(mem_src);
  for (std::size_t r = 0; r < rows; ++r)
    transfer(dst + r * ldm_pitch, src + r * mem_pitch, row_bytes, pc);
}

void DmaEngine::put_2d(void* mem_dst, const void* ldm_src, std::size_t rows,
                       std::size_t row_bytes, std::size_t mem_pitch,
                       std::size_t ldm_pitch, PerfCounters& pc) const {
  SWGMX_CHECK_MSG(rows > 0, "zero-row 2-D DMA transfer");
  auto* dst = static_cast<unsigned char*>(mem_dst);
  const auto* src = static_cast<const unsigned char*>(ldm_src);
  for (std::size_t r = 0; r < rows; ++r)
    transfer(dst + r * mem_pitch, src + r * ldm_pitch, row_bytes, pc);
}

}  // namespace swgmx::sw
