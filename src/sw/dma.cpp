#include "sw/dma.hpp"

#include <cstring>

#include "common/error.hpp"

namespace swgmx::sw {

void DmaEngine::charge(std::size_t bytes, PerfCounters& pc) const {
  pc.dma_cycles += cfg_->dma_cycles(bytes);
  pc.dma_transfers += 1;
  pc.dma_bytes += bytes;
}

void DmaEngine::get(void* ldm_dst, const void* mem_src, std::size_t bytes,
                    PerfCounters& pc) const {
  SWGMX_CHECK(bytes > 0);
  std::memcpy(ldm_dst, mem_src, bytes);
  charge(bytes, pc);
}

void DmaEngine::put(void* mem_dst, const void* ldm_src, std::size_t bytes,
                    PerfCounters& pc) const {
  SWGMX_CHECK(bytes > 0);
  std::memcpy(mem_dst, ldm_src, bytes);
  charge(bytes, pc);
}

}  // namespace swgmx::sw
