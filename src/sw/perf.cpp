#include "sw/perf.hpp"

namespace swgmx::sw {

PerfCounters& PerfCounters::operator+=(const PerfCounters& o) {
  compute_cycles += o.compute_cycles;
  dma_cycles += o.dma_cycles;
  gld_cycles += o.gld_cycles;
  hidden_dma_cycles += o.hidden_dma_cycles;
  dma_transfers += o.dma_transfers;
  dma_bytes += o.dma_bytes;
  gld_count += o.gld_count;
  gst_count += o.gst_count;
  read_hits += o.read_hits;
  read_misses += o.read_misses;
  write_hits += o.write_hits;
  write_misses += o.write_misses;
  return *this;
}

double PhaseTimers::get(const std::string& phase) const {
  const auto it = seconds_.find(phase);
  return it == seconds_.end() ? 0.0 : it->second;
}

double PhaseTimers::total() const {
  double t = 0.0;
  for (const auto& [name, s] : seconds_) t += s;
  return t;
}

PhaseTimers& PhaseTimers::operator+=(const PhaseTimers& o) {
  for (const auto& [name, s] : o.seconds_) seconds_[name] += s;
  return *this;
}

}  // namespace swgmx::sw
