#include "sw/fault.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <vector>

#include "common/error.hpp"

namespace swgmx::sw {

FaultRates parse_fault_spec(const char* spec) {
  FaultRates r;
  if (spec == nullptr || *spec == '\0') return r;
  const std::string s(spec);
  std::vector<std::string> seen;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    const std::string item = s.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const std::size_t colon = item.find(':');
    SWGMX_CHECK_MSG(colon != std::string::npos,
                    "SWGMX_FAULTS item '" << item << "' is not key:value");
    const std::string key = item.substr(0, colon);
    const std::string val = item.substr(colon + 1);
    SWGMX_CHECK_MSG(!key.empty(),
                    "SWGMX_FAULTS item '" << item << "' has an empty key");
    SWGMX_CHECK_MSG(std::find(seen.begin(), seen.end(), key) == seen.end(),
                    "duplicate SWGMX_FAULTS key '" << key << "'");
    seen.push_back(key);

    char* end = nullptr;
    auto parse_int = [&](const char* what) {
      const long long v = std::strtoll(val.c_str(), &end, 10);
      SWGMX_CHECK_MSG(end != nullptr && *end == '\0' && !val.empty(),
                      "SWGMX_FAULTS " << what << " '" << val
                                      << "' is not an integer");
      SWGMX_CHECK_MSG(v >= 0, "SWGMX_FAULTS " << what << ":" << v
                                              << " must be >= 0");
      return static_cast<int>(v);
    };
    auto parse_double = [&](const char* what) {
      const double v = std::strtod(val.c_str(), &end);
      SWGMX_CHECK_MSG(end != nullptr && *end == '\0' && !val.empty(),
                      "SWGMX_FAULTS " << what << " '" << val
                                      << "' is not a number");
      return v;
    };

    if (key == "seed") {
      r.seed = std::strtoull(val.c_str(), &end, 10);
      SWGMX_CHECK_MSG(end != nullptr && *end == '\0' && !val.empty(),
                      "SWGMX_FAULTS seed '" << val << "' is not an integer");
      continue;
    }
    if (key == "spare_ranks") {
      r.spare_ranks = parse_int("spare_ranks");
      continue;
    }
    if (key == "svc_crash") {
      r.svc_crash_event = parse_int("svc_crash");
      continue;
    }
    if (key == "max_dma_retries") {
      r.policy.max_dma_retries = parse_int("max_dma_retries");
      continue;
    }
    if (key == "max_msg_retries") {
      r.policy.max_msg_retries = parse_int("max_msg_retries");
      continue;
    }
    if (key == "gossip_confirmations") {
      r.policy.gossip_confirmations = parse_int("gossip_confirmations");
      continue;
    }
    if (key == "msg_timeout_factor") {
      r.policy.msg_timeout_factor = parse_double("msg_timeout_factor");
      SWGMX_CHECK_MSG(r.policy.msg_timeout_factor > 0.0,
                      "SWGMX_FAULTS msg_timeout_factor must be > 0");
      continue;
    }
    if (key == "msg_backoff") {
      r.policy.msg_backoff = parse_double("msg_backoff");
      SWGMX_CHECK_MSG(r.policy.msg_backoff >= 1.0,
                      "SWGMX_FAULTS msg_backoff "
                          << r.policy.msg_backoff
                          << " must be >= 1 (exponential backoff)");
      continue;
    }
    if (key == "hb_interval") {
      r.policy.heartbeat_interval_s = parse_double("hb_interval");
      SWGMX_CHECK_MSG(r.policy.heartbeat_interval_s > 0.0,
                      "SWGMX_FAULTS hb_interval must be > 0");
      continue;
    }
    if (key == "hb_timeout") {
      r.policy.heartbeat_timeout_s = parse_double("hb_timeout");
      SWGMX_CHECK_MSG(r.policy.heartbeat_timeout_s > 0.0,
                      "SWGMX_FAULTS hb_timeout must be > 0");
      continue;
    }

    const double rate = parse_double("rate");
    SWGMX_CHECK_MSG(rate >= 0.0 && rate <= 1.0,
                    "SWGMX_FAULTS rate " << key << ":" << rate
                                         << " outside [0, 1]");
    if (key == "dma_flip") {
      r.dma_flip = rate;
    } else if (key == "dma_stall") {
      r.dma_stall = rate;
    } else if (key == "msg_drop") {
      r.msg_drop = rate;
    } else if (key == "msg_dup") {
      r.msg_dup = rate;
    } else if (key == "msg_delay") {
      r.msg_delay = rate;
    } else if (key == "cpe_straggle") {
      r.cpe_straggle = rate;
    } else if (key == "numeric_kick") {
      r.numeric_kick = rate;
    } else if (key == "rank_crash") {
      r.rank_crash = rate;
    } else if (key == "rank_hang") {
      r.rank_hang = rate;
    } else if (key == "journal_torn") {
      r.journal_torn = rate;
    } else if (key == "journal_crc") {
      r.journal_crc = rate;
    } else if (key == "fsync_fail") {
      r.fsync_fail = rate;
    } else {
      SWGMX_CHECK_MSG(false,
                      "unknown SWGMX_FAULTS key '"
                          << key
                          << "' (dma_flip|dma_stall|msg_drop|msg_dup|"
                             "msg_delay|cpe_straggle|numeric_kick|rank_crash|"
                             "rank_hang|journal_torn|journal_crc|fsync_fail|"
                             "svc_crash|spare_ranks|seed|max_dma_retries|"
                             "max_msg_retries|msg_timeout_factor|msg_backoff|"
                             "hb_interval|hb_timeout|gossip_confirmations)");
    }
  }
  SWGMX_CHECK_MSG(
      r.policy.heartbeat_timeout_s >= r.policy.heartbeat_interval_s,
      "SWGMX_FAULTS hb_timeout " << r.policy.heartbeat_timeout_s
                                 << " must be >= hb_interval "
                                 << r.policy.heartbeat_interval_s);
  return r;
}

namespace {
std::atomic<FaultInjector*>& active_injector() {
  static std::atomic<FaultInjector*> active{nullptr};
  return active;
}
}  // namespace

FaultInjector& FaultInjector::global() {
  if (FaultInjector* a = active_injector().load(std::memory_order_acquire);
      a != nullptr) {
    return *a;
  }
  static FaultInjector* instance = [] {
    auto* fi = new FaultInjector();
    fi->configure_from_env(std::getenv("SWGMX_FAULTS"));
    return fi;
  }();
  return *instance;
}

FaultInjector* FaultInjector::install(FaultInjector* inj) {
  return active_injector().exchange(inj, std::memory_order_acq_rel);
}

void FaultInjector::configure(const FaultRates& rates) {
  plan_ = FaultPlan(rates);
  reset_stats();
  step_.store(0, std::memory_order_relaxed);
  enabled_.store(rates.any(), std::memory_order_relaxed);
}

void FaultInjector::configure_from_env(const char* spec) {
  configure(parse_fault_spec(spec));
}

void FaultInjector::add_cycles(double cycles) {
  fault_cycles_.fetch_add(static_cast<std::uint64_t>(std::llround(cycles)),
                          std::memory_order_relaxed);
}

void FaultInjector::add_msg_seconds(double seconds) {
  msg_fault_ns_.fetch_add(
      static_cast<std::uint64_t>(std::llround(seconds * 1e9)),
      std::memory_order_relaxed);
}

void FaultInjector::add_ns(Counter& c, double seconds) {
  c.fetch_add(static_cast<std::uint64_t>(std::llround(seconds * 1e9)),
              std::memory_order_relaxed);
}

RecoveryStats FaultInjector::snapshot() const {
  RecoveryStats s;
  s.dma_bitflips = dma_bitflips_.load(std::memory_order_relaxed);
  s.dma_retries = dma_retries_.load(std::memory_order_relaxed);
  s.dma_stalls = dma_stalls_.load(std::memory_order_relaxed);
  s.msgs_dropped = msgs_dropped_.load(std::memory_order_relaxed);
  s.msg_retransmits = msg_retransmits_.load(std::memory_order_relaxed);
  s.msgs_duplicated = msgs_duplicated_.load(std::memory_order_relaxed);
  s.msg_delays = msg_delays_.load(std::memory_order_relaxed);
  s.cpe_stragglers = cpe_stragglers_.load(std::memory_order_relaxed);
  s.numeric_kicks = numeric_kicks_.load(std::memory_order_relaxed);
  s.rollbacks = rollbacks_.load(std::memory_order_relaxed);
  s.steps_replayed = steps_replayed_.load(std::memory_order_relaxed);
  s.transport_fallbacks = transport_fallbacks_.load(std::memory_order_relaxed);
  s.checkpoints_written = checkpoints_written_.load(std::memory_order_relaxed);
  s.rank_crashes = rank_crashes_.load(std::memory_order_relaxed);
  s.rank_hangs = rank_hangs_.load(std::memory_order_relaxed);
  s.ranks_evicted = ranks_evicted_.load(std::memory_order_relaxed);
  s.spares_promoted = spares_promoted_.load(std::memory_order_relaxed);
  s.redecompositions = redecompositions_.load(std::memory_order_relaxed);
  s.journal_torn_frames = journal_torn_frames_.load(std::memory_order_relaxed);
  s.journal_crc_flips = journal_crc_flips_.load(std::memory_order_relaxed);
  s.fsync_failures = fsync_failures_.load(std::memory_order_relaxed);
  s.svc_crashes = svc_crashes_.load(std::memory_order_relaxed);
  s.journal_frames_dropped =
      journal_frames_dropped_.load(std::memory_order_relaxed);
  s.journal_events_replayed =
      journal_events_replayed_.load(std::memory_order_relaxed);
  s.fault_cycles = fault_cycles_.load(std::memory_order_relaxed);
  s.msg_fault_ns = msg_fault_ns_.load(std::memory_order_relaxed);
  s.detection_ns = detection_ns_.load(std::memory_order_relaxed);
  s.redecomp_ns = redecomp_ns_.load(std::memory_order_relaxed);
  return s;
}

void FaultInjector::reset_stats() {
  for (Counter* c :
       {&dma_bitflips_, &dma_retries_, &dma_stalls_, &msgs_dropped_,
        &msg_retransmits_, &msgs_duplicated_, &msg_delays_, &cpe_stragglers_,
        &numeric_kicks_, &rollbacks_, &steps_replayed_, &transport_fallbacks_,
        &checkpoints_written_, &rank_crashes_, &rank_hangs_, &ranks_evicted_,
        &spares_promoted_, &redecompositions_, &journal_torn_frames_,
        &journal_crc_flips_, &fsync_failures_, &svc_crashes_,
        &journal_frames_dropped_, &journal_events_replayed_, &fsync_ops_,
        &fault_cycles_, &msg_fault_ns_, &detection_ns_, &redecomp_ns_}) {
    c->store(0, std::memory_order_relaxed);
  }
}

}  // namespace swgmx::sw
