#include "sw/cpe.hpp"

// CpeContext is header-only; TU kept so the target has a stable object file.
