#include "sw/config.hpp"

#include <cstdlib>
#include <cstring>

#include "common/error.hpp"

namespace swgmx::sw {

namespace {
// -1 = not yet resolved from the environment; 0/1 afterwards.
int g_overlap_state = -1;
}  // namespace

bool overlap_enabled() {
  if (g_overlap_state < 0) {
    const char* env = std::getenv("SWGMX_OVERLAP");
    g_overlap_state =
        (env != nullptr && std::strcmp(env, "0") == 0) ? 0 : 1;
  }
  return g_overlap_state != 0;
}

void set_overlap_enabled(bool on) { g_overlap_state = on ? 1 : 0; }

double SwConfig::dma_bandwidth(std::size_t bytes) const {
  SWGMX_CHECK_MSG(bytes > 0, "DMA transfer of zero bytes");
  const auto& c = dma_curve;
  if (bytes <= c.front().bytes) return c.front().gb_per_s * 1e9;
  if (bytes >= c.back().bytes) return c.back().gb_per_s * 1e9;
  for (std::size_t i = 1; i < c.size(); ++i) {
    if (bytes <= c[i].bytes) {
      const double x0 = static_cast<double>(c[i - 1].bytes);
      const double x1 = static_cast<double>(c[i].bytes);
      const double y0 = c[i - 1].gb_per_s;
      const double y1 = c[i].gb_per_s;
      const double t = (static_cast<double>(bytes) - x0) / (x1 - x0);
      return (y0 + t * (y1 - y0)) * 1e9;
    }
  }
  return c.back().gb_per_s * 1e9;  // unreachable
}

double SwConfig::dma_cycles(std::size_t bytes) const {
  // The curve is per-CG aggregate with all CPEs active; a single CPE's
  // transfer therefore sees 1/dma_concurrency of it.
  return static_cast<double>(bytes) * dma_concurrency / dma_bandwidth(bytes) *
         freq_hz;
}

}  // namespace swgmx::sw
