// DMA engine: CPE <-> main-memory bulk transfers. Functionally a memcpy;
// cost-wise charged from the Table 2 bandwidth curve.
#pragma once

#include <cstddef>
#include <span>

#include "sw/config.hpp"
#include "sw/perf.hpp"

namespace swgmx::sw {

/// Models the per-CPE DMA channel. get() pulls a contiguous block of main
/// memory into LDM; put() pushes LDM back. Both actually copy (so functional
/// results are real) and charge simulated cycles to the counters.
class DmaEngine {
 public:
  explicit DmaEngine(const SwConfig& cfg) : cfg_(&cfg) {}

  /// Main memory -> LDM.
  void get(void* ldm_dst, const void* mem_src, std::size_t bytes,
           PerfCounters& pc) const;

  /// LDM -> main memory.
  void put(void* mem_dst, const void* ldm_src, std::size_t bytes,
           PerfCounters& pc) const;

  /// Typed convenience overloads.
  template <typename T>
  void get(std::span<T> ldm_dst, const T* mem_src, PerfCounters& pc) const {
    get(ldm_dst.data(), mem_src, ldm_dst.size_bytes(), pc);
  }
  template <typename T>
  void put(T* mem_dst, std::span<const T> ldm_src, PerfCounters& pc) const {
    put(mem_dst, ldm_src.data(), ldm_src.size_bytes(), pc);
  }

  [[nodiscard]] const SwConfig& config() const { return *cfg_; }

 private:
  void charge(std::size_t bytes, PerfCounters& pc) const;
  const SwConfig* cfg_;
};

}  // namespace swgmx::sw
