// DMA engine: CPE <-> main-memory bulk transfers. Functionally a memcpy;
// cost-wise charged from the Table 2 bandwidth curve.
//
// Robustness: transfer sizes are validated (0-byte and >LDM-budget requests
// are contract violations), and when the global FaultInjector is enabled
// every transfer is CRC32-verified against injected bit flips, with a
// bounded retry loop whose redo copies and stall penalties are charged to
// the counters. With faults disabled the fault path is a single
// branch-predictable check.
#pragma once

#include <cstddef>
#include <span>

#include "sw/config.hpp"
#include "sw/perf.hpp"

namespace swgmx::sw {

/// Models the per-CPE DMA channel. get() pulls a contiguous block of main
/// memory into LDM; put() pushes LDM back. Both actually copy (so functional
/// results are real) and charge simulated cycles to the counters.
class DmaEngine {
 public:
  /// `lane` identifies the owning CPE in fault-injection keys (the fault
  /// pattern of a transfer depends on which CPE issued it, not on the host
  /// thread that simulated it).
  explicit DmaEngine(const SwConfig& cfg, int lane = 0)
      : cfg_(&cfg), lane_(lane) {}

  /// Main memory -> LDM.
  void get(void* ldm_dst, const void* mem_src, std::size_t bytes,
           PerfCounters& pc) const;

  /// LDM -> main memory.
  void put(void* mem_dst, const void* ldm_src, std::size_t bytes,
           PerfCounters& pc) const;

  /// Strided (2-D) transfers: `rows` runs of `row_bytes`, the main-memory
  /// side advancing by `mem_pitch` bytes per row and the LDM side by
  /// `ldm_pitch`. Each row is charged as its own transfer — short rows sit
  /// low on the Table 2 bandwidth curve, which is exactly the cost a
  /// DMA-staged transpose pays on the real chip.
  void get_2d(void* ldm_dst, const void* mem_src, std::size_t rows,
              std::size_t row_bytes, std::size_t mem_pitch,
              std::size_t ldm_pitch, PerfCounters& pc) const;
  void put_2d(void* mem_dst, const void* ldm_src, std::size_t rows,
              std::size_t row_bytes, std::size_t mem_pitch,
              std::size_t ldm_pitch, PerfCounters& pc) const;

  /// Typed convenience overloads.
  template <typename T>
  void get(std::span<T> ldm_dst, const T* mem_src, PerfCounters& pc) const {
    get(ldm_dst.data(), mem_src, ldm_dst.size_bytes(), pc);
  }
  template <typename T>
  void put(T* mem_dst, std::span<const T> ldm_src, PerfCounters& pc) const {
    put(mem_dst, ldm_src.data(), ldm_src.size_bytes(), pc);
  }

  [[nodiscard]] const SwConfig& config() const { return *cfg_; }

 private:
  void charge(std::size_t bytes, PerfCounters& pc) const;
  /// The shared copy path: validate, copy, and (under fault injection)
  /// corrupt/verify/retry. `dst` is the side whose payload can be corrupted.
  void transfer(void* dst, const void* src, std::size_t bytes,
                PerfCounters& pc) const;
  const SwConfig* cfg_;
  int lane_;
};

}  // namespace swgmx::sw
