#include "sw/ldm.hpp"

// Header-only today; this TU pins the library symbol table and is the natural
// home if LdmArena ever grows out-of-line members.
