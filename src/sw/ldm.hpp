// Local Device Memory (LDM) arena: each CPE owns 64 KB of software-managed
// scratchpad. Kernels must fit all their buffers (caches, staging areas,
// SIMD temporaries) inside this budget — the arena enforces it.
#pragma once

#include <cstddef>
#include <memory>
#include <span>

#include "common/error.hpp"

namespace swgmx::sw {

/// Bump allocator over a fixed-size buffer modelling one CPE's LDM.
///
/// Allocation is 16-byte aligned (the library-wide 128-bit alignment rule).
/// There is no free(); kernels reset the whole arena between launches, which
/// matches how LDM is used on the real hardware (static partitioning per
/// kernel).
class LdmArena {
 public:
  explicit LdmArena(std::size_t capacity_bytes)
      : capacity_(capacity_bytes),
        storage_(std::make_unique<std::byte[]>(capacity_bytes)) {}

  LdmArena(const LdmArena&) = delete;
  LdmArena& operator=(const LdmArena&) = delete;
  LdmArena(LdmArena&&) = default;
  LdmArena& operator=(LdmArena&&) = default;

  /// Allocate `count` default-initialized objects of T. Throws swgmx::Error
  /// if the 64 KB budget would be exceeded — exactly the failure a kernel
  /// author must design around on the real chip.
  template <typename T>
  [[nodiscard]] std::span<T> allocate(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "LDM objects must be trivially destructible (no free())");
    const std::size_t bytes = round_up(count * sizeof(T));
    SWGMX_CHECK_MSG(used_ + bytes <= capacity_,
                    "LDM overflow: need " << bytes << " B, free "
                                          << (capacity_ - used_) << " B of "
                                          << capacity_);
    T* p = new (storage_.get() + used_) T[count]();
    used_ += bytes;
    return {p, count};
  }

  /// Release everything (called between kernel launches).
  void reset() { used_ = 0; }

  [[nodiscard]] std::size_t used() const { return used_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t free_bytes() const { return capacity_ - used_; }

 private:
  static constexpr std::size_t kAlign = 16;
  static constexpr std::size_t round_up(std::size_t b) {
    return (b + kAlign - 1) / kAlign * kAlign;
  }

  std::size_t capacity_;
  std::size_t used_ = 0;
  std::unique_ptr<std::byte[]> storage_;
};

}  // namespace swgmx::sw
