#!/usr/bin/env python3
"""Inspect a SW_GROMACS tuning profile (stdlib only).

On-disk format (src/tune/profile.cpp), all plain text:
  swgmx-tune-profile v1
  workload <name>
  size <particles>
  <param> <int>          one line per launch parameter, fixed table order
  crc32 0x<8 hex>        IEEE CRC-32 (zlib.crc32) over every preceding byte

Prints the header and parameter table (flagging values that differ from the
paper defaults) and the CRC verdict. Mirrors the loader's triage: a schema
version other than v1 is STALE (declined before the CRC is judged), a bad
CRC or structure is CORRUPT, and a verified profile with unknown/duplicate
keys or missing header lines is INVALID. Exit status: 0 = healthy,
1 = stale / corrupt / invalid, 2 = usage.
"""

import sys
import zlib

SCHEMA_VERSION = 1
MAGIC = "swgmx-tune-profile"

# Paper-default launch parameters, in profile line order
# (src/tune/params.cpp kSpecs; the C++ side validates ranges, we only
# flag deviations from the defaults).
DEFAULTS = {
    "pkgs_per_line": 8,
    "row_chunk": 512,
    "read_sets": 32,
    "read_ways": 2,
    "write_lines": 16,
    "pl_sets": 32,
    "pl_ways": 2,
    "atom_chunk": 128,
    "grid_slots": 16,
    "pen_slots": 16,
    "fft_batch_bytes": 32768,
    "mpe_lines_per_batch": 16,
    "nstlist": 10,
}


def fail(msg):
    print(f"tune_dump: {msg}", file=sys.stderr)
    return 1


def dump(path):
    with open(path, "rb") as f:
        raw = f.read()
    text = raw.decode("ascii", errors="replace")
    lines = [ln for ln in text.split("\n") if ln]
    if not lines or not lines[0].startswith(MAGIC + " "):
        return fail(f"{path}: not a SW_GROMACS tuning profile")
    print(f"file:     {path}")

    version_str = lines[0][len(MAGIC) + 1:]
    if not version_str.startswith("v") or not version_str[1:].isdigit():
        return fail(f"{path}: malformed schema version '{version_str}'")
    version = int(version_str[1:])
    print(f"format:   v{version}")
    if version != SCHEMA_VERSION:
        # Match the loader: another schema's trailer layout is not ours to
        # judge, only to decline.
        return fail(f"{path}: STALE schema (loader supports "
                    f"v{SCHEMA_VERSION}; it would fall back to defaults)")

    if not lines[-1].startswith("crc32 0x"):
        return fail(f"{path}: missing crc32 trailer")
    stored = int(lines[-1].split()[1], 16)
    body_len = raw.rfind(b"crc32 0x")
    crc = zlib.crc32(raw[:body_len])
    verdict = "OK" if crc == stored else "MISMATCH"
    print(f"crc:      stored {stored:#010x}, computed {crc:#010x} [{verdict}]")
    if crc != stored:
        return fail(f"{path}: CRC mismatch (corrupt file; the loader would "
                    "fall back to defaults)")

    workload, size = None, None
    params = {}
    for ln in lines[1:-1]:
        key, _, value = ln.partition(" ")
        if not value:
            return fail(f"{path}: line '{ln}' has no value")
        if key == "workload":
            if workload is not None:
                return fail(f"{path}: duplicate workload line")
            workload = value
            continue
        if key in params or (key == "size" and size is not None):
            return fail(f"{path}: duplicate key '{key}'")
        if not value.lstrip("-").isdigit():
            return fail(f"{path}: {key} value '{value}' is not an integer")
        if key == "size":
            size = int(value)
            continue
        if key not in DEFAULTS:
            return fail(f"{path}: unknown key '{key}' (the loader would "
                        "reject this profile)")
        params[key] = int(value)
    if workload is None or size is None:
        return fail(f"{path}: missing the workload/size header lines")

    print(f"workload: {workload}")
    print(f"size:     {size} particles")
    print("params:   (* = differs from the paper default)")
    width = max(len(k) for k in DEFAULTS)
    for key, default in DEFAULTS.items():
        if key not in params:
            print(f"  {key:<{width}}  (absent -> default {default})")
            continue
        value = params[key]
        mark = f"  * (default {default})" if value != default else ""
        print(f"  {key:<{width}}  {value}{mark}")
    extra = [k for k in params if k not in DEFAULTS]
    if extra:  # unreachable given the loop above, defensive
        return fail(f"{path}: unexpected keys {extra}")
    return 0


def main(argv):
    if len(argv) != 2 or argv[1].startswith("--"):
        print(__doc__.strip(), file=sys.stderr)
        print("\nusage: tune_dump.py <profile>", file=sys.stderr)
        return 2
    try:
        return dump(argv[1])
    except OSError as e:
        return fail(f"{argv[1]}: {e}")


if __name__ == "__main__":
    sys.exit(main(sys.argv))
