#!/usr/bin/env python3
"""Compare two BENCH result files and fail on regressions.

The benches print one machine-readable line per result:

    BENCH {"name":"fig8/48000/SW(Mark)","host_threads":8,"schema_version":1,
           "sim_seconds":...,"wall_seconds":...}

CI strips the "BENCH " prefix into a JSON-lines file (one object per line,
keyed by "name"). This tool diffs such a file against a checked-in baseline
(bench/baselines/*.json) with per-metric tolerance classes:

  exact          every metric not listed below. The simulated clock is
                 deterministic, so sim_seconds, speedups, cycle counts and
                 attribution shares must match the baseline bit for bit.
  ratio window   keys containing "wall" (host wall clock): machine-dependent,
                 so the candidate only fails when it leaves
                 [baseline/W, baseline*W] (W = --wall-window, default 100 —
                 a hang detector, not a perf gate; tighten on a quiet host).
  ignored        host_threads (attribution of wall numbers, not a result).
  schema         schema_version must match exactly; a mismatch means the
                 BENCH format changed — regenerate the baselines
                 (see README "Bench-regression sentinel") instead of chasing
                 per-metric diffs.

Names/metrics present in the baseline but missing from the candidate fail;
extra names/metrics in the candidate warn (--strict turns them into
failures) so adding a bench doesn't break the gate before the baseline is
refreshed.

Exit codes:
  0  no regressions (warnings allowed unless --strict)
  1  at least one regression / mismatch
  2  usage error (unreadable file, malformed JSON line, bad arguments)

Stdlib only; python3 tools/bench_diff.py --selftest exercises the tool on a
built-in baseline + perturbed candidate and exits non-zero if a perturbation
ever slips through.
"""

import argparse
import json
import math
import sys

SCHEMA_KEY = "schema_version"
IGNORED_KEYS = {"host_threads"}


def is_wall_key(key):
    return "wall" in key


def load_bench_lines(path):
    """Parse a JSON-lines BENCH file into {name: {metric: value}}."""
    results = {}
    warnings = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = f.readlines()
    except OSError as e:
        raise SystemExit(f"bench_diff: cannot read {path}: {e}")
    for lineno, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("BENCH "):  # accept raw bench logs too
            line = line[len("BENCH "):]
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as e:
            raise SystemExit(f"bench_diff: {path}:{lineno}: malformed JSON: {e}")
        if not isinstance(obj, dict) or "name" not in obj:
            raise SystemExit(
                f"bench_diff: {path}:{lineno}: BENCH object without a name")
        name = obj["name"]
        if name in results:
            warnings.append(f"{path}: duplicate name {name!r} (last wins)")
        results[name] = {
            k: v for k, v in obj.items() if k != "name"
        }
    return results, warnings


def compare_metric(name, key, base, cand, wall_window):
    """Return an error string, or None when the metric passes."""
    if not isinstance(base, (int, float)) or not isinstance(cand, (int, float)):
        if base != cand:
            return f"{name}: {key}: baseline {base!r} != candidate {cand!r}"
        return None
    if key == SCHEMA_KEY:
        if base != cand:
            return (f"{name}: {SCHEMA_KEY} {base} -> {cand}: BENCH format "
                    f"changed; regenerate bench/baselines/ (see README)")
        return None
    if is_wall_key(key):
        if wall_window <= 0:
            return None
        if base <= 0 or cand <= 0:
            return None  # wall clock can degenerate to 0 on trivial runs
        ratio = cand / base
        if ratio > wall_window or ratio < 1.0 / wall_window:
            return (f"{name}: {key}: wall-clock ratio {ratio:.2f} outside "
                    f"[1/{wall_window:g}, {wall_window:g}] "
                    f"({base:g} -> {cand:g})")
        return None
    if isinstance(base, float) or isinstance(cand, float):
        same = (base == cand) or (math.isnan(base) and math.isnan(cand))
    else:
        same = base == cand
    if not same:
        return f"{name}: {key}: baseline {base!r} != candidate {cand!r} (exact)"
    return None


def diff(baseline, candidate, wall_window=100.0):
    """Compare parsed result dicts; returns (errors, warnings)."""
    errors = []
    warnings = []
    for name, base_metrics in sorted(baseline.items()):
        if name not in candidate:
            errors.append(f"{name}: missing from candidate")
            continue
        cand_metrics = candidate[name]
        for key, base_val in sorted(base_metrics.items()):
            if key in IGNORED_KEYS:
                continue
            if key not in cand_metrics:
                errors.append(f"{name}: metric {key} missing from candidate")
                continue
            err = compare_metric(name, key, base_val, cand_metrics[key],
                                 wall_window)
            if err:
                errors.append(err)
        for key in sorted(cand_metrics.keys() - base_metrics.keys()):
            if key not in IGNORED_KEYS:
                warnings.append(f"{name}: extra metric {key} in candidate")
    for name in sorted(candidate.keys() - baseline.keys()):
        warnings.append(f"{name}: extra name in candidate")
    return errors, warnings


def write_report(path, baseline_path, candidate_path, errors, warnings):
    report = {
        "baseline": baseline_path,
        "candidate": candidate_path,
        "errors": errors,
        "warnings": warnings,
        "ok": not errors,
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")


def selftest():
    base = {
        "fig8/48000/Mark": {"schema_version": 1, "host_threads": 1,
                            "sim_seconds": 0.125, "speedup_vs_ori": 61.5,
                            "wall_seconds": 2.0},
        "table1/case2/critpath": {"schema_version": 1, "network_share": 0.485,
                                  "span_seconds": 1.0},
    }
    # 1. identical candidate (different host_threads / sane wall) passes.
    clean = {
        "fig8/48000/Mark": {"schema_version": 1, "host_threads": 8,
                            "sim_seconds": 0.125, "speedup_vs_ori": 61.5,
                            "wall_seconds": 3.5},
        "table1/case2/critpath": {"schema_version": 1, "network_share": 0.485,
                                  "span_seconds": 1.0},
    }
    errors, _ = diff(base, clean)
    assert not errors, f"clean candidate flagged: {errors}"

    # 2. every class of perturbation is caught.
    perturbations = [
        # exact metric drift
        ("fig8/48000/Mark", "sim_seconds", 0.1251),
        # attribution drift
        ("table1/case2/critpath", "network_share", 0.34),
        # schema drift
        ("fig8/48000/Mark", "schema_version", 2),
        # wall-clock blow-up past the window
        ("fig8/48000/Mark", "wall_seconds", 2.0 * 101),
    ]
    for name, key, value in perturbations:
        cand = {n: dict(m) for n, m in clean.items()}
        cand[name][key] = value
        errors, _ = diff(base, cand)
        assert errors, f"perturbation {name}/{key}={value} not caught"

    # 3. a dropped result is a failure, an extra one only a warning.
    cand = {n: dict(m) for n, m in clean.items()}
    del cand["table1/case2/critpath"]
    errors, _ = diff(base, cand)
    assert errors, "missing name not caught"
    cand = {n: dict(m) for n, m in clean.items()}
    cand["new/bench"] = {"schema_version": 1, "sim_seconds": 1.0}
    errors, warnings = diff(base, cand)
    assert not errors and warnings, "extra name should warn, not fail"

    print("bench_diff selftest: ok")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="bench_diff.py",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline", nargs="?",
                        help="checked-in baseline (bench/baselines/*.json)")
    parser.add_argument("candidate", nargs="?",
                        help="freshly generated BENCH JSON-lines file")
    parser.add_argument("--wall-window", type=float, default=100.0,
                        metavar="W",
                        help="allowed wall-clock ratio window [1/W, W] "
                             "(default %(default)s; <= 0 disables wall checks)")
    parser.add_argument("--strict", action="store_true",
                        help="treat extra names/metrics in the candidate as "
                             "failures")
    parser.add_argument("--report", metavar="PATH",
                        help="write a machine-readable diff report (JSON)")
    parser.add_argument("--selftest", action="store_true",
                        help="run the built-in perturbation test and exit")
    args = parser.parse_args(argv)

    if args.selftest:
        return selftest()
    if not args.baseline or not args.candidate:
        parser.error("baseline and candidate files are required")

    baseline, warn_b = load_bench_lines(args.baseline)
    candidate, warn_c = load_bench_lines(args.candidate)
    errors, warnings = diff(baseline, candidate, args.wall_window)
    warnings = warn_b + warn_c + warnings
    if args.strict:
        errors, warnings = errors + warnings, []

    if args.report:
        write_report(args.report, args.baseline, args.candidate, errors,
                     warnings)
    for w in warnings:
        print(f"WARN  {w}")
    for e in errors:
        print(f"FAIL  {e}")
    if errors:
        print(f"bench_diff: {len(errors)} regression(s) vs {args.baseline}")
        return 1
    print(f"bench_diff: {len(baseline)} result(s) match {args.baseline}")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except SystemExit as e:
        if isinstance(e.code, str):
            print(e.code, file=sys.stderr)
            sys.exit(2)
        raise
