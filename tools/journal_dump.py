#!/usr/bin/env python3
"""Inspect a SW_GROMACS scheduler write-ahead journal (stdlib only).

On-disk format (src/io/frame_log.cpp + src/svc/journal.cpp):
  magic u64 "SWGXWAL1", then frames of
    len u32 | crc u32 | payload[len]
  where crc is IEEE CRC-32 (zlib.crc32) of the payload. Every payload opens
  with the 13-byte record prefix: kind u8 | t f64 | seq i32 (little-endian).
  Event kinds 1..10 are scheduler transitions (submit .. complete); kind 32
  is a compaction snapshot and is only legal as the first frame.

Prints one line per frame (offset, size, kind, scheduler clock, job seq)
and a trailer summarizing the scan. A torn or CRC-bad suffix is reported
exactly the way recovery treats it: everything from the first bad frame on
is dead weight that JobScheduler::recover() would truncate.

Exit status: 0 = healthy to the last byte, 1 = corrupt (bad magic, CRC
mismatch, torn frame, snapshot after frame 0, undecodable prefix),
2 = usage. `--selftest` builds synthetic journals and checks all three.
"""

import os
import struct
import sys
import tempfile
import zlib

MAGIC = 0x314C4157_58475753  # "SWGXWAL1" little-endian

KIND_NAMES = {
    1: "submit",
    2: "admit",
    3: "reject_quota",
    4: "reject_queue",
    5: "shed",
    6: "slice",
    7: "preempt",
    8: "retry",
    9: "quarantine",
    10: "complete",
    32: "snapshot",
}


def fail(msg):
    print(f"journal_dump: {msg}", file=sys.stderr)
    return 1


def dump(path, quiet=False):
    try:
        data = open(path, "rb").read()
    except OSError as e:
        return fail(f"{path}: {e}")
    if len(data) < 8:
        return fail(f"{path}: {len(data)} bytes, too short for the magic")
    (magic,) = struct.unpack_from("<Q", data, 0)
    if magic != MAGIC:
        return fail(f"{path}: not a SW_GROMACS journal (magic {magic:#018x})")
    if not quiet:
        print(f"file:  {path}")
        print(f"size:  {len(data)} bytes")

    pos = 8
    frames = 0
    bad = None
    while pos < len(data):
        if pos + 8 > len(data):
            bad = f"torn frame header at offset {pos}"
            break
        length, crc = struct.unpack_from("<II", data, pos)
        if length == 0 or length >= 1 << 30:
            bad = f"implausible frame length {length} at offset {pos}"
            break
        if pos + 8 + length > len(data):
            bad = (f"torn payload at offset {pos} "
                   f"(frame wants {length} bytes, file has "
                   f"{len(data) - pos - 8})")
            break
        payload = data[pos + 8:pos + 8 + length]
        if zlib.crc32(payload) != crc:
            bad = f"CRC mismatch at offset {pos} (frame {frames})"
            break
        if length < 13:
            bad = (f"frame {frames} at offset {pos}: {length} bytes, "
                   f"shorter than the record prefix")
            break
        kind, t = struct.unpack_from("<Bd", payload, 0)
        (seq,) = struct.unpack_from("<i", payload, 9)
        name = KIND_NAMES.get(kind)
        if name is None:
            bad = f"frame {frames} at offset {pos}: unknown kind {kind}"
            break
        if kind == 32 and frames != 0:
            bad = (f"frame {frames} at offset {pos}: compaction snapshot "
                   f"is only legal as the first frame")
            break
        if not quiet:
            print(f"frame {frames:5d}  off={pos:<10d} len={length:<8d} "
                  f"{name:<12s} t={t:<22.17g} seq={seq}")
        frames += 1
        pos += 8 + length

    if not quiet:
        print(f"frames: {frames} clean")
    if bad is not None:
        print(f"journal_dump: {path}: {bad}; {len(data) - pos} trailing "
              f"byte(s) would be truncated by recovery", file=sys.stderr)
        return 1
    if not quiet:
        print("verdict: healthy")
    return 0


# --- selftest -------------------------------------------------------------

def _frame(payload):
    return struct.pack("<II", len(payload), zlib.crc32(payload)) + payload


def _record(kind, t, seq, tail=b""):
    return struct.pack("<Bdi", kind, t, seq) + tail


def selftest():
    failures = 0

    def check(name, path, want):
        nonlocal failures
        got = dump(path, quiet=True)
        if got != want:
            print(f"selftest FAIL: {name}: exit {got}, wanted {want}",
                  file=sys.stderr)
            failures += 1

    with tempfile.TemporaryDirectory(prefix="journal_dump_selftest") as d:
        magic = struct.pack("<Q", MAGIC)

        healthy = os.path.join(d, "healthy")
        with open(healthy, "wb") as f:
            f.write(magic)
            f.write(_frame(_record(32, 0.0, -1, b"\x00" * 40)))  # snapshot
            for i, kind in enumerate((1, 2, 6, 10)):
                f.write(_frame(_record(kind, 0.25 * i, i)))
        check("healthy journal", healthy, 0)

        empty = os.path.join(d, "empty")
        with open(empty, "wb") as f:
            f.write(magic)
        check("magic-only journal", empty, 0)

        badmagic = os.path.join(d, "badmagic")
        with open(badmagic, "wb") as f:
            f.write(b"notajournal!")
        check("bad magic", badmagic, 1)

        torn = os.path.join(d, "torn")
        with open(torn, "wb") as f:
            f.write(magic)
            f.write(_frame(_record(1, 0.0, 0)))
            whole = _frame(_record(2, 1.0, 0))
            f.write(whole[:len(whole) - 5])  # power cut mid-append
        check("torn tail", torn, 1)

        flipped = os.path.join(d, "crcflip")
        with open(flipped, "wb") as f:
            f.write(magic)
            f.write(_frame(_record(1, 0.0, 0)))
            frame = bytearray(_frame(_record(2, 1.0, 0)))
            frame[10] ^= 0x04  # one payload bit, after the checksum
            f.write(bytes(frame))
        check("CRC flip", flipped, 1)

        misplaced = os.path.join(d, "midsnapshot")
        with open(misplaced, "wb") as f:
            f.write(magic)
            f.write(_frame(_record(1, 0.0, 0)))
            f.write(_frame(_record(32, 1.0, -1, b"\x00" * 40)))
        check("snapshot after frame 0", misplaced, 1)

        check("missing file", os.path.join(d, "nope"), 1)

    if failures:
        return 1
    print("journal_dump selftest: all journals classified correctly")
    return 0


def main(argv):
    if len(argv) == 2 and argv[1] == "--selftest":
        return selftest()
    if len(argv) != 2 or argv[1].startswith("-"):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    return dump(argv[1])


if __name__ == "__main__":
    sys.exit(main(sys.argv))
