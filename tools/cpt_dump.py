#!/usr/bin/env python3
"""Inspect a SW_GROMACS checkpoint file (stdlib only).

Understands both on-disk formats (src/io/checkpoint.cpp):
  v1 "SWGX CPT2": magic u64, step i64, n u64, crc u32, x[n*12], v[n*12]
  v2 "SWGX CPT3": magic u64, commit u32 (PEND/COMT), step i64, n u64,
      crc u32, rank layout (world, active, px, py, pz, spares_promoted,
      n_evicted, evicted[n_evicted] — all i32), x[n*12], v[n*12]
All fields little-endian. The payload CRC is IEEE CRC-32 (zlib.crc32) over
the x bytes then the v bytes.

Prints the header, the rank layout (v2) and the CRC verdict. Exit status:
0 = healthy, 1 = corrupt / truncated / uncommitted / CRC mismatch, 2 = usage.

With --dir, validates a service preemption-checkpoint directory instead
(one <tenant>__<job>.cpt per suspended/preempted job, written by
svc::Job::preempt): every primary checkpoint must be healthy AND have a
healthy _prev rotation sibling (the inspector's two-deep fallback
guarantee). An empty directory fails — pointing this at the wrong path
must not pass silently.
"""

import os
import struct
import sys
import zlib

MAGIC_V1 = 0x53574758_43505432
MAGIC_V2 = 0x53574758_43505433
PENDING = 0x444E4550  # "PEND"
COMMITTED = 0x544D4F43  # "COMT"


def fail(msg):
    print(f"cpt_dump: {msg}", file=sys.stderr)
    return 1


def read_exact(f, nbytes, what):
    data = f.read(nbytes)
    if len(data) != nbytes:
        raise EOFError(f"truncated file while reading {what} "
                       f"(wanted {nbytes} bytes, got {len(data)})")
    return data


def dump(path):
    with open(path, "rb") as f:
        (magic,) = struct.unpack("<Q", read_exact(f, 8, "magic"))
        if magic == MAGIC_V1:
            version = 1
        elif magic == MAGIC_V2:
            version = 2
        else:
            return fail(f"{path}: not a SW_GROMACS checkpoint "
                        f"(magic {magic:#018x})")
        print(f"file:    {path}")
        print(f"format:  v{version} "
              f"({'coordinated, two-phase commit' if version == 2 else 'legacy'})")

        if version == 2:
            (commit,) = struct.unpack("<I", read_exact(f, 4, "commit marker"))
            if commit == COMMITTED:
                print("commit:  COMMITTED")
            elif commit == PENDING:
                print("commit:  PENDING")
                return fail(f"{path}: uncommitted (torn) coordinated "
                            "checkpoint")
            else:
                return fail(f"{path}: unrecognized commit marker "
                            f"{commit:#010x}")

        step, n, crc_stored = struct.unpack(
            "<qQI", read_exact(f, 20, "step/count/crc header"))
        if n == 0 or n >= 1 << 32:
            return fail(f"{path}: implausible particle count {n}")
        print(f"step:    {step}")
        print(f"n:       {n} particles")

        if version == 2:
            world, active, px, py, pz, spares, n_evicted = struct.unpack(
                "<7i", read_exact(f, 28, "rank layout"))
            evicted = list(struct.unpack(
                f"<{n_evicted}i",
                read_exact(f, 4 * n_evicted, "evicted-rank list"))) \
                if 0 <= n_evicted < 1 << 16 else None
            if evicted is None:
                return fail(f"{path}: implausible evicted-rank count "
                            f"{n_evicted}")
            print(f"layout:  world={world} active={active} "
                  f"grid={px}x{py}x{pz} spares_promoted={spares}")
            print(f"evicted: {evicted if evicted else '(none)'}")
            if not (1 <= active <= world and px * py * pz == active
                    and n_evicted < world):
                return fail(f"{path}: inconsistent rank layout")

        xbytes = read_exact(f, 12 * n, "positions")
        vbytes = read_exact(f, 12 * n, "velocities")
        if f.read(1):
            return fail(f"{path}: trailing bytes after payload")

    crc = zlib.crc32(vbytes, zlib.crc32(xbytes))
    verdict = "OK" if crc == crc_stored else "MISMATCH"
    print(f"crc:     stored {crc_stored:#010x}, computed {crc:#010x} "
          f"[{verdict}]")
    if crc != crc_stored:
        return fail(f"{path}: payload CRC mismatch (corrupt file)")
    return 0


def dump_quiet(path):
    """dump() with stdout suppressed; returns its exit code."""
    saved = sys.stdout
    sys.stdout = open(os.devnull, "w")
    try:
        return dump(path)
    except (EOFError, OSError, struct.error) as e:
        return fail(f"{path}: {e}")
    finally:
        sys.stdout.close()
        sys.stdout = saved


def prev_path(path):
    """Mirror io::checkpoint_prev_path: foo.cpt -> foo_prev.cpt."""
    root, ext = os.path.splitext(path)
    return root + "_prev" + ext


def dump_dir(dirpath):
    if not os.path.isdir(dirpath):
        return fail(f"{dirpath}: not a directory")
    primaries = sorted(
        name for name in os.listdir(dirpath)
        if name.endswith(".cpt") and not name.endswith("_prev.cpt"))
    if not primaries:
        return fail(f"{dirpath}: no preemption checkpoints found")
    bad = 0
    for name in primaries:
        path = os.path.join(dirpath, name)
        ok = dump_quiet(path) == 0
        prev = prev_path(path)
        prev_ok = os.path.exists(prev) and dump_quiet(prev) == 0
        verdict = "OK" if ok and prev_ok else "BAD"
        detail = []
        if not ok:
            detail.append("primary invalid")
        if not os.path.exists(prev):
            detail.append("missing _prev fallback")
        elif not prev_ok:
            detail.append("_prev invalid")
        print(f"{verdict}  {name}" + (f"  ({', '.join(detail)})"
                                      if detail else ""))
        if verdict == "BAD":
            bad += 1
    print(f"{len(primaries)} job checkpoint(s), {bad} bad")
    return 1 if bad else 0


def main(argv):
    if len(argv) == 3 and argv[1] == "--dir":
        return dump_dir(argv[2])
    if len(argv) != 2 or argv[1].startswith("--"):
        print(__doc__.strip(), file=sys.stderr)
        print("\nusage: cpt_dump.py <checkpoint> | cpt_dump.py --dir <dir>",
              file=sys.stderr)
        return 2
    try:
        return dump(argv[1])
    except (EOFError, OSError, struct.error) as e:
        return fail(f"{argv[1]}: {e}")


if __name__ == "__main__":
    sys.exit(main(sys.argv))
