#!/usr/bin/env python3
"""Validate a SW_GROMACS trace + metrics snapshot (stdlib only).

Usage: validate_trace.py TRACE.json [METRICS.json]

Checks that the trace is well-formed Chrome-trace-event JSON that Perfetto
will load, that the instrumentation actually covered the simulator (>= 64
CPE tracks, kernel/DMA/PME/step events), and that the metrics snapshot
carries the per-kernel compute/memory cycle split and the step-time
histogram. Exits non-zero with a message on the first failure.
"""
import json
import sys

REQUIRED_BY_PH = {
    "X": {"name", "pid", "tid", "ts", "dur"},
    "i": {"name", "pid", "tid", "ts", "s"},
    "s": {"name", "pid", "tid", "ts", "id", "cat"},
    "f": {"name", "pid", "tid", "ts", "id", "cat"},
    "M": {"name", "pid", "args"},
}


def fail(msg):
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check(cond, msg):
    if not cond:
        fail(msg)


def validate_trace(path):
    with open(path) as f:
        doc = json.load(f)
    check(isinstance(doc, dict) and "traceEvents" in doc,
          "top level must be an object with a traceEvents list")
    events = doc["traceEvents"]
    check(isinstance(events, list) and events, "traceEvents is empty")

    names_by_ph = {}
    thread_names = set()
    process_names = set()
    for i, ev in enumerate(events):
        check(isinstance(ev, dict), f"event {i} is not an object")
        ph = ev.get("ph")
        check(ph in REQUIRED_BY_PH, f"event {i} has unsupported ph {ph!r}")
        missing = REQUIRED_BY_PH[ph] - ev.keys()
        check(not missing, f"event {i} (ph={ph}) missing fields {sorted(missing)}")
        if ph in ("X", "i"):
            check(ev["ts"] >= 0, f"event {i} has negative ts")
        if ph == "X":
            check(ev["dur"] >= 0, f"event {i} has negative dur")
        if ph == "M" and ev["name"] == "thread_name":
            thread_names.add(ev["args"]["name"])
        elif ph == "M" and ev["name"] == "process_name":
            process_names.add(ev["args"]["name"])
        else:
            names_by_ph.setdefault(ph, set()).add(ev["name"])

    cpe_tracks = {n for n in thread_names if n.startswith("CPE ")}
    check(len(cpe_tracks) >= 64, f"expected >= 64 CPE tracks, got {len(cpe_tracks)}")
    check("core_group" in process_names, "missing core_group process metadata")

    spans = names_by_ph.get("X", set())
    instants = names_by_ph.get("i", set())
    for required in ("step", "Neighbor search", "Force"):
        check(required in spans, f"missing {required!r} spans")
    check(any(n.startswith("dma_") for n in spans), "no DMA transfer events")
    check(any(n.startswith("pme/") for n in spans), "no PME phase spans")
    check(any(n.startswith("sr/") for n in spans), "no kernel-launch spans")
    print(f"validate_trace: trace OK: {len(events)} events, "
          f"{len(cpe_tracks)} CPE tracks, "
          f"{len(spans)} span names, {len(instants)} instant names")


def validate_metrics(path):
    with open(path) as f:
        doc = json.load(f)
    for section in ("counters", "gauges", "histograms"):
        check(section in doc and isinstance(doc[section], dict),
              f"metrics snapshot missing {section!r} section")
    counters = doc["counters"]
    kernels = {k.split("/", 1)[1].rsplit("/", 1)[0]
               for k in counters if k.startswith("kernel/")}
    check(kernels, "no kernel/* metrics recorded")
    for kern in kernels:
        for leaf in ("launches", "compute_cycles", "mem_cycles", "sim_seconds"):
            check(f"kernel/{kern}/{leaf}" in counters,
                  f"kernel {kern!r} missing {leaf} counter")
    check("sim/steps" in counters, "missing sim/steps counter")
    hist = doc["histograms"].get("sim/step_seconds")
    check(hist is not None, "missing sim/step_seconds histogram")
    for field in ("count", "sum", "p50", "p95", "p99", "bounds", "buckets"):
        check(field in hist, f"sim/step_seconds histogram missing {field!r}")
    check(hist["count"] > 0, "sim/step_seconds histogram is empty")
    print(f"validate_metrics: metrics OK: {len(counters)} counters, "
          f"{len(doc['gauges'])} gauges, {len(doc['histograms'])} histograms, "
          f"{len(kernels)} kernels")


def main(argv):
    if len(argv) < 2:
        fail("usage: validate_trace.py TRACE.json [METRICS.json]")
    validate_trace(argv[1])
    if len(argv) > 2:
        validate_metrics(argv[2])


if __name__ == "__main__":
    main(sys.argv)
