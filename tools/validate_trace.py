#!/usr/bin/env python3
"""Validate a SW_GROMACS trace + metrics snapshot (stdlib only).

Usage: validate_trace.py [--overlap|--serial] TRACE.json [METRICS.json]

Checks that the trace is well-formed Chrome-trace-event JSON that Perfetto
will load, that the instrumentation actually covered the simulator (>= 64
CPE tracks, kernel/DMA/PME/step events), that no simulator track
double-charges an interval (same-track spans must nest or be disjoint), and
that the metrics snapshot carries the per-kernel compute/memory cycle split
and the step-time histogram. With --overlap the trace must additionally show
the overlap engine at work: "stream" partition tracks with genuinely
concurrent spans. With --serial it must not carry any stream tracks. Exits
non-zero with a message on the first failure.
"""
import json
import sys

# Tolerance (trace microseconds) for float rounding in span boundaries.
EPS_NEST = 1e-2
# Minimum same-time window (microseconds) for two spans to count as
# genuinely concurrent rather than merely adjacent.
EPS_CONCURRENT = 1.0

REQUIRED_BY_PH = {
    "X": {"name", "pid", "tid", "ts", "dur"},
    "i": {"name", "pid", "tid", "ts", "s"},
    "s": {"name", "pid", "tid", "ts", "id", "cat"},
    "f": {"name", "pid", "tid", "ts", "id", "cat"},
    "M": {"name", "pid", "args"},
}


def fail(msg):
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check(cond, msg):
    if not cond:
        fail(msg)


def validate_trace(path):
    with open(path) as f:
        doc = json.load(f)
    check(isinstance(doc, dict) and "traceEvents" in doc,
          "top level must be an object with a traceEvents list")
    events = doc["traceEvents"]
    check(isinstance(events, list) and events, "traceEvents is empty")

    names_by_ph = {}
    thread_names = set()
    process_names = set()
    for i, ev in enumerate(events):
        check(isinstance(ev, dict), f"event {i} is not an object")
        ph = ev.get("ph")
        check(ph in REQUIRED_BY_PH, f"event {i} has unsupported ph {ph!r}")
        missing = REQUIRED_BY_PH[ph] - ev.keys()
        check(not missing, f"event {i} (ph={ph}) missing fields {sorted(missing)}")
        if ph in ("X", "i"):
            check(ev["ts"] >= 0, f"event {i} has negative ts")
        if ph == "X":
            check(ev["dur"] >= 0, f"event {i} has negative dur")
        if ph == "M" and ev["name"] == "thread_name":
            thread_names.add(ev["args"]["name"])
        elif ph == "M" and ev["name"] == "process_name":
            process_names.add(ev["args"]["name"])
        else:
            names_by_ph.setdefault(ph, set()).add(ev["name"])

    cpe_tracks = {n for n in thread_names if n.startswith("CPE ")}
    check(len(cpe_tracks) >= 64, f"expected >= 64 CPE tracks, got {len(cpe_tracks)}")
    check("core_group" in process_names, "missing core_group process metadata")

    spans = names_by_ph.get("X", set())
    instants = names_by_ph.get("i", set())
    for required in ("step", "Neighbor search", "Force"):
        check(required in spans, f"missing {required!r} spans")
    check(any(n.startswith("dma_") for n in spans), "no DMA transfer events")
    check(any(n.startswith("pme/") for n in spans), "no PME phase spans")
    check(any(n.startswith("sr/") for n in spans), "no kernel-launch spans")
    check_no_double_charge(events)
    print(f"validate_trace: trace OK: {len(events)} events, "
          f"{len(cpe_tracks)} CPE tracks, "
          f"{len(spans)} span names, {len(instants)} instant names")
    return events


def sim_pids(events):
    """Pids of the simulator process (rank pids model per-rank mirrors of
    globally-computed work and are exempt from the accounting invariants)."""
    return {ev["pid"] for ev in events
            if ev.get("ph") == "M" and ev["name"] == "process_name"
            and ev["args"]["name"] == "core_group"}


def stream_tracks(events):
    """(pid, tid) of the overlap engine's partition tracks."""
    return {(ev["pid"], ev["tid"]) for ev in events
            if ev.get("ph") == "M" and ev["name"] == "thread_name"
            and ev["args"]["name"].startswith("stream ")}


def check_no_double_charge(events):
    """Same-track spans must nest or be disjoint: a track whose spans
    partially overlap charges some interval twice. DMA markers are drawn on
    the pipelined timeline and may straddle kernel tile boundaries, so they
    are exempt. Multi-rank traces are skipped entirely: there the simulator
    process mirrors *globally computed* kernels (physics is computed once)
    while the step clock advances per-rank shares, so kernel spans
    legitimately outlive their step — the rank-time accounting lives on the
    rank pids and the phase timers."""
    if any(ev.get("ph") == "M" and ev["name"] == "process_name"
           and ev["args"]["name"].startswith("rank ") for ev in events):
        print("validate_trace: multi-rank trace, skipping same-track "
              "double-charge check (global-compute mirror)")
        return
    pids = sim_pids(events)
    tracks = {}
    for ev in events:
        if ev.get("ph") != "X" or ev["pid"] not in pids:
            continue
        if ev["name"].startswith("dma_"):
            continue
        tracks.setdefault((ev["pid"], ev["tid"]), []).append(
            (ev["ts"], ev["ts"] + ev["dur"], ev["name"]))
    for (pid, tid), spans in tracks.items():
        spans.sort(key=lambda s: (s[0], -(s[1] - s[0])))
        open_ends = []
        for t0, t1, name in spans:
            while open_ends and open_ends[-1] <= t0 + EPS_NEST:
                open_ends.pop()
            if open_ends:
                check(t1 <= open_ends[-1] + EPS_NEST,
                      f"span {name!r} on track ({pid},{tid}) at ts={t0} "
                      f"partially overlaps an earlier span "
                      f"(double-charged interval)")
            open_ends.append(t1)


def check_overlap_mode(events):
    """The overlap engine must leave visible evidence: partition stream
    tracks, with at least one pair of spans on *different* streams running
    at the same simulated time."""
    streams = stream_tracks(events)
    check(streams, "overlap trace has no 'stream' partition tracks")
    latest = {}  # track -> max span end seen so far
    found = False
    spans = [ev for ev in events
             if ev.get("ph") == "X" and (ev["pid"], ev["tid"]) in streams]
    for ev in sorted(spans, key=lambda e: e["ts"]):
        track = (ev["pid"], ev["tid"])
        for other, end in latest.items():
            if other != track and end > ev["ts"] + EPS_CONCURRENT:
                found = True
        latest[track] = max(latest.get(track, 0.0), ev["ts"] + ev["dur"])
    check(found, "no concurrent spans across different stream tracks")
    print(f"validate_trace: overlap OK: {len(streams)} stream tracks with "
          f"concurrent spans")


def check_serial_mode(events):
    check(not stream_tracks(events),
          "serial (SWGMX_OVERLAP=0) trace must not carry stream tracks")
    print("validate_trace: serial OK: no stream tracks")


def validate_metrics(path):
    with open(path) as f:
        doc = json.load(f)
    for section in ("counters", "gauges", "histograms"):
        check(section in doc and isinstance(doc[section], dict),
              f"metrics snapshot missing {section!r} section")
    counters = doc["counters"]
    kernels = {k.split("/", 1)[1].rsplit("/", 1)[0]
               for k in counters if k.startswith("kernel/")}
    check(kernels, "no kernel/* metrics recorded")
    for kern in kernels:
        for leaf in ("launches", "compute_cycles", "mem_cycles", "sim_seconds"):
            check(f"kernel/{kern}/{leaf}" in counters,
                  f"kernel {kern!r} missing {leaf} counter")
    check("sim/steps" in counters, "missing sim/steps counter")
    hist = doc["histograms"].get("sim/step_seconds")
    check(hist is not None, "missing sim/step_seconds histogram")
    for field in ("count", "sum", "p50", "p95", "p99", "bounds", "buckets"):
        check(field in hist, f"sim/step_seconds histogram missing {field!r}")
    check(hist["count"] > 0, "sim/step_seconds histogram is empty")
    print(f"validate_metrics: metrics OK: {len(counters)} counters, "
          f"{len(doc['gauges'])} gauges, {len(doc['histograms'])} histograms, "
          f"{len(kernels)} kernels")


def main(argv):
    mode = None
    args = []
    for a in argv[1:]:
        if a in ("--overlap", "--serial"):
            check(mode is None, "pass at most one of --overlap/--serial")
            mode = a
        else:
            args.append(a)
    if not args:
        fail("usage: validate_trace.py [--overlap|--serial] TRACE.json "
             "[METRICS.json]")
    events = validate_trace(args[0])
    if mode == "--overlap":
        check_overlap_mode(events)
    elif mode == "--serial":
        check_serial_mode(events)
    if len(args) > 1:
        validate_metrics(args[1])


if __name__ == "__main__":
    main(sys.argv)
