#!/usr/bin/env python3
"""Validate a SW_GROMACS trace + metrics snapshot (stdlib only).

Usage: validate_trace.py [--overlap|--serial|--service|--summary]
                         TRACE.json [METRICS.json]

Exit codes:
  0  trace (and metrics, when given) pass all checks
  1  a validation check failed (message on stderr)
  2  usage error (bad flags, missing arguments)

--summary does not validate: it prints per-track event counts plus the
ring-overflow drop totals (the synthesized "trace_ring_overflow" instants
carry the per-track dropped counts in their args) and exits 0.

A validated trace that carries ring-overflow evidence still passes, but a
warning is printed: dropped events mean SWGMX_TRACE_RING was too small for
the run and counters/spans in the affected window are incomplete.

Checks that the trace is well-formed Chrome-trace-event JSON that Perfetto
will load, that the instrumentation actually covered the simulator (>= 64
CPE tracks, kernel/DMA/PME/step events), that no simulator track
double-charges an interval (same-track spans must nest or be disjoint), and
that the metrics snapshot carries the per-kernel compute/memory cycle split
and the step-time histogram. With --overlap the trace must additionally show
the overlap engine at work: "stream" partition tracks with genuinely
concurrent spans. With --serial it must not carry any stream tracks. Exits
non-zero with a message on the first failure.

--service validates a multi-tenant service trace (bench/service_soak)
instead: every scheduled job owns its own "job <tenant>/<name>" trace
process (>= 2 of them), a "scheduler" process carries the admission /
preemption / quarantine instants, NOTHING leaks onto the shared core_group
process (the isolation seam: a leaked span would mean one job's events
landed on another's timeline), and each job's CPE tracks carry
nest-or-disjoint spans only (cross-job interleaving shows up as partial
overlap). The metrics snapshot, when given, must carry the rolled-up svc/
namespaces instead of the top-level simulator counters.
"""
import json
import sys

# Tolerance (trace microseconds) for float rounding in span boundaries.
EPS_NEST = 1e-2
# Minimum same-time window (microseconds) for two spans to count as
# genuinely concurrent rather than merely adjacent.
EPS_CONCURRENT = 1.0

REQUIRED_BY_PH = {
    "X": {"name", "pid", "tid", "ts", "dur"},
    "i": {"name", "pid", "tid", "ts", "s"},
    "s": {"name", "pid", "tid", "ts", "id", "cat"},
    "f": {"name", "pid", "tid", "ts", "id", "cat"},
    "C": {"name", "pid", "tid", "ts", "args"},
    "M": {"name", "pid", "args"},
}


def fail(msg):
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def usage_fail(msg):
    print(f"validate_trace: {msg}", file=sys.stderr)
    sys.exit(2)


def check(cond, msg):
    if not cond:
        fail(msg)


def validate_trace(path):
    with open(path) as f:
        doc = json.load(f)
    check(isinstance(doc, dict) and "traceEvents" in doc,
          "top level must be an object with a traceEvents list")
    events = doc["traceEvents"]
    check(isinstance(events, list) and events, "traceEvents is empty")

    names_by_ph = {}
    thread_names = set()
    process_names = set()
    for i, ev in enumerate(events):
        check(isinstance(ev, dict), f"event {i} is not an object")
        ph = ev.get("ph")
        check(ph in REQUIRED_BY_PH, f"event {i} has unsupported ph {ph!r}")
        missing = REQUIRED_BY_PH[ph] - ev.keys()
        check(not missing, f"event {i} (ph={ph}) missing fields {sorted(missing)}")
        if ph in ("X", "i", "C"):
            check(ev["ts"] >= 0, f"event {i} has negative ts")
        if ph == "X":
            check(ev["dur"] >= 0, f"event {i} has negative dur")
        if ph == "M" and ev["name"] == "thread_name":
            thread_names.add(ev["args"]["name"])
        elif ph == "M" and ev["name"] == "process_name":
            process_names.add(ev["args"]["name"])
        else:
            names_by_ph.setdefault(ph, set()).add(ev["name"])

    cpe_tracks = {n for n in thread_names if n.startswith("CPE ")}
    check(len(cpe_tracks) >= 64, f"expected >= 64 CPE tracks, got {len(cpe_tracks)}")
    check("core_group" in process_names, "missing core_group process metadata")

    spans = names_by_ph.get("X", set())
    instants = names_by_ph.get("i", set())
    for required in ("step", "Neighbor search", "Force"):
        check(required in spans, f"missing {required!r} spans")
    check(any(n.startswith("dma_") for n in spans), "no DMA transfer events")
    check(any(n.startswith("pme/") for n in spans), "no PME phase spans")
    check(any(n.startswith("sr/") for n in spans), "no kernel-launch spans")
    check_no_double_charge(events)
    warn_on_drops(events)
    print(f"validate_trace: trace OK: {len(events)} events, "
          f"{len(cpe_tracks)} CPE tracks, "
          f"{len(spans)} span names, {len(instants)} instant names")
    return events


def drop_totals(events):
    """{(pid, tid): dropped} from the synthesized ring-overflow instants."""
    drops = {}
    for ev in events:
        if ev.get("ph") == "i" and ev.get("name") == "trace_ring_overflow":
            drops[(ev["pid"], ev["tid"])] = ev.get("args", {}).get("dropped", 0)
    return drops


def warn_on_drops(events):
    drops = drop_totals(events)
    if drops:
        total = sum(drops.values())
        print(f"validate_trace: WARNING: ring overflow dropped {total} "
              f"event(s) on {len(drops)} track(s) — raise SWGMX_TRACE_RING; "
              f"the affected windows are incomplete", file=sys.stderr)


def summarize(path):
    """--summary: per-track event counts + drop totals. No validation."""
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents", [])
    proc_names = {}
    track_names = {}
    counts = {}
    for ev in events:
        ph = ev.get("ph")
        if ph == "M" and ev.get("name") == "process_name":
            proc_names[ev["pid"]] = ev["args"]["name"]
        elif ph == "M" and ev.get("name") == "thread_name":
            track_names[(ev["pid"], ev["tid"])] = ev["args"]["name"]
        elif "tid" in ev:
            counts[(ev["pid"], ev["tid"])] = counts.get(
                (ev["pid"], ev["tid"]), 0) + 1
    drops = drop_totals(events)
    print(f"{path}: {len(events)} events on {len(counts)} tracks")
    for (pid, tid) in sorted(counts):
        pname = proc_names.get(pid, f"pid {pid}")
        tname = track_names.get((pid, tid), f"tid {tid}")
        line = f"  {pname} / {tname}: {counts[(pid, tid)]} events"
        if (pid, tid) in drops:
            line += f" (+{drops[(pid, tid)]} dropped)"
        print(line)
    total = sum(drops.values())
    if total:
        print(f"  dropped: {total} event(s) across {len(drops)} track(s) "
              f"(ring overflow — raise SWGMX_TRACE_RING)")
    else:
        print("  dropped: 0 events")


def sim_pids(events):
    """Pids of the simulator process (rank pids model per-rank mirrors of
    globally-computed work and are exempt from the accounting invariants)."""
    return {ev["pid"] for ev in events
            if ev.get("ph") == "M" and ev["name"] == "process_name"
            and ev["args"]["name"] == "core_group"}


def stream_tracks(events):
    """(pid, tid) of the overlap engine's partition tracks."""
    return {(ev["pid"], ev["tid"]) for ev in events
            if ev.get("ph") == "M" and ev["name"] == "thread_name"
            and ev["args"]["name"].startswith("stream ")}


def check_no_double_charge(events):
    """Same-track spans must nest or be disjoint: a track whose spans
    partially overlap charges some interval twice. DMA markers are drawn on
    the pipelined timeline and may straddle kernel tile boundaries, so they
    are exempt. Multi-rank traces are skipped entirely: there the simulator
    process mirrors *globally computed* kernels (physics is computed once)
    while the step clock advances per-rank shares, so kernel spans
    legitimately outlive their step — the rank-time accounting lives on the
    rank pids and the phase timers."""
    if any(ev.get("ph") == "M" and ev["name"] == "process_name"
           and ev["args"]["name"].startswith("rank ") for ev in events):
        print("validate_trace: multi-rank trace, skipping same-track "
              "double-charge check (global-compute mirror)")
        return
    pids = sim_pids(events)
    tracks = {}
    for ev in events:
        if ev.get("ph") != "X" or ev["pid"] not in pids:
            continue
        if ev["name"].startswith("dma_"):
            continue
        tracks.setdefault((ev["pid"], ev["tid"]), []).append(
            (ev["ts"], ev["ts"] + ev["dur"], ev["name"]))
    for (pid, tid), spans in tracks.items():
        spans.sort(key=lambda s: (s[0], -(s[1] - s[0])))
        open_ends = []
        for t0, t1, name in spans:
            while open_ends and open_ends[-1] <= t0 + EPS_NEST:
                open_ends.pop()
            if open_ends:
                check(t1 <= open_ends[-1] + EPS_NEST,
                      f"span {name!r} on track ({pid},{tid}) at ts={t0} "
                      f"partially overlaps an earlier span "
                      f"(double-charged interval)")
            open_ends.append(t1)


def check_overlap_mode(events):
    """The overlap engine must leave visible evidence: partition stream
    tracks, with at least one pair of spans on *different* streams running
    at the same simulated time."""
    streams = stream_tracks(events)
    check(streams, "overlap trace has no 'stream' partition tracks")
    latest = {}  # track -> max span end seen so far
    found = False
    spans = [ev for ev in events
             if ev.get("ph") == "X" and (ev["pid"], ev["tid"]) in streams]
    for ev in sorted(spans, key=lambda e: e["ts"]):
        track = (ev["pid"], ev["tid"])
        for other, end in latest.items():
            if other != track and end > ev["ts"] + EPS_CONCURRENT:
                found = True
        latest[track] = max(latest.get(track, 0.0), ev["ts"] + ev["dur"])
    check(found, "no concurrent spans across different stream tracks")
    print(f"validate_trace: overlap OK: {len(streams)} stream tracks with "
          f"concurrent spans")


def validate_service(path):
    """Service-mode trace validation (see module docstring)."""
    with open(path) as f:
        doc = json.load(f)
    check(isinstance(doc, dict) and "traceEvents" in doc,
          "top level must be an object with a traceEvents list")
    events = doc["traceEvents"]
    check(isinstance(events, list) and events, "traceEvents is empty")

    proc_names = {}     # pid -> process name
    track_names = {}    # (pid, tid) -> thread name
    span_names = set()
    instant_names = set()
    for i, ev in enumerate(events):
        check(isinstance(ev, dict), f"event {i} is not an object")
        ph = ev.get("ph")
        check(ph in REQUIRED_BY_PH, f"event {i} has unsupported ph {ph!r}")
        missing = REQUIRED_BY_PH[ph] - ev.keys()
        check(not missing,
              f"event {i} (ph={ph}) missing fields {sorted(missing)}")
        if ph == "M" and ev["name"] == "process_name":
            proc_names[ev["pid"]] = ev["args"]["name"]
        elif ph == "M" and ev["name"] == "thread_name":
            track_names[(ev["pid"], ev["tid"])] = ev["args"]["name"]
        elif ph == "X":
            span_names.add(ev["name"])
        elif ph == "i":
            instant_names.add(ev["name"])

    job_pids = {pid for pid, n in proc_names.items() if n.startswith("job ")}
    check(len(job_pids) >= 2,
          f"expected >= 2 job processes, got {len(job_pids)}")
    check("scheduler" in proc_names.values(), "missing scheduler process")
    for required in ("job_admitted", "job_completed"):
        check(required in instant_names,
              f"missing scheduler {required!r} instants")
    for required in ("step", "Force"):
        check(required in span_names, f"missing {required!r} spans")

    # Isolation seam: a slice that escaped its JobContext would land on the
    # shared core_group process.
    leaked = [ev for ev in events if ev.get("ph") == "X"
              and proc_names.get(ev["pid"]) == "core_group"]
    check(not leaked,
          f"{len(leaked)} span(s) leaked onto the shared core_group process "
          f"(first: {leaked[0]['name']!r})" if leaked else "")

    # Each job owns a full simulated process; at least one must carry the
    # whole CPE fleet.
    cpe_by_pid = {}
    for (pid, tid), name in track_names.items():
        if pid in job_pids and name.startswith("CPE "):
            cpe_by_pid[pid] = cpe_by_pid.get(pid, 0) + 1
    check(cpe_by_pid and max(cpe_by_pid.values()) >= 64,
          "no job process carries >= 64 CPE tracks")

    # Cross-job interleaving check: spans from two jobs on one CPE track
    # would partially overlap (each job's own kernels nest or are disjoint).
    # "[parallel]" jobs mirror globally-computed kernels over per-rank clock
    # seeks (same exemption as multi-rank traces in the base validator).
    serial_jobs = {pid for pid in job_pids
                   if not proc_names[pid].endswith("[parallel]")}
    tracks = {}
    for ev in events:
        if ev.get("ph") != "X" or ev["pid"] not in serial_jobs:
            continue
        tname = track_names.get((ev["pid"], ev["tid"]), "")
        if not tname.startswith("CPE ") or ev["name"].startswith("dma_"):
            continue
        tracks.setdefault((ev["pid"], ev["tid"]), []).append(
            (ev["ts"], ev["ts"] + ev["dur"], ev["name"]))
    for (pid, tid), spans in tracks.items():
        spans.sort(key=lambda s: (s[0], -(s[1] - s[0])))
        open_ends = []
        for t0, t1, name in spans:
            while open_ends and open_ends[-1] <= t0 + EPS_NEST:
                open_ends.pop()
            if open_ends:
                check(t1 <= open_ends[-1] + EPS_NEST,
                      f"span {name!r} on job track ({pid},{tid}) at ts={t0} "
                      f"partially overlaps an earlier span (cross-job "
                      f"interleaving or double charge)")
            open_ends.append(t1)

    print(f"validate_trace: service OK: {len(events)} events, "
          f"{len(job_pids)} job processes, "
          f"{max(cpe_by_pid.values())} CPE tracks on the busiest job, "
          f"{len(instant_names)} scheduler instant names")


def validate_service_metrics(path):
    """The rolled-up svc/ namespaces of a service-soak metrics snapshot."""
    with open(path) as f:
        doc = json.load(f)
    for section in ("counters", "gauges", "histograms"):
        check(section in doc and isinstance(doc[section], dict),
              f"metrics snapshot missing {section!r} section")
    counters = doc["counters"]
    check(counters.get("svc/jobs/completed", 0) > 0,
          "missing or zero svc/jobs/completed counter")
    check("svc/total/sim/steps" in counters,
          "missing svc/total/sim/steps rollup counter")
    job_steps = {k for k in counters
                 if k.startswith("svc/") and k.endswith("/sim/steps")
                 and not k.startswith(("svc/total/", "svc/tenant/"))}
    check(len(job_steps) >= 2, "fewer than 2 per-job sim/steps namespaces")
    tenant_steps = [k for k in counters
                    if k.startswith("svc/tenant/") and k.endswith("/sim/steps")]
    check(tenant_steps, "no svc/tenant/*/sim/steps rollups")
    # No double counting: the total equals the sum of the per-job numbers.
    total = counters["svc/total/sim/steps"]
    per_job = sum(counters[k] for k in job_steps)
    check(abs(total - per_job) < 1e-6,
          f"svc/total/sim/steps {total} != sum of per-job steps {per_job}")
    hist = doc["histograms"].get("svc/job_latency_seconds")
    check(hist is not None, "missing svc/job_latency_seconds histogram")
    check(hist["count"] > 0, "svc/job_latency_seconds histogram is empty")
    print(f"validate_metrics: service metrics OK: {len(job_steps)} jobs, "
          f"{len(tenant_steps)} tenants, latency count {hist['count']}")


def check_serial_mode(events):
    check(not stream_tracks(events),
          "serial (SWGMX_OVERLAP=0) trace must not carry stream tracks")
    print("validate_trace: serial OK: no stream tracks")


def validate_metrics(path):
    with open(path) as f:
        doc = json.load(f)
    for section in ("counters", "gauges", "histograms"):
        check(section in doc and isinstance(doc[section], dict),
              f"metrics snapshot missing {section!r} section")
    counters = doc["counters"]
    kernels = {k.split("/", 1)[1].rsplit("/", 1)[0]
               for k in counters if k.startswith("kernel/")}
    check(kernels, "no kernel/* metrics recorded")
    for kern in kernels:
        for leaf in ("launches", "compute_cycles", "mem_cycles", "sim_seconds"):
            check(f"kernel/{kern}/{leaf}" in counters,
                  f"kernel {kern!r} missing {leaf} counter")
    check("sim/steps" in counters, "missing sim/steps counter")
    hist = doc["histograms"].get("sim/step_seconds")
    check(hist is not None, "missing sim/step_seconds histogram")
    for field in ("count", "sum", "p50", "p95", "p99", "bounds", "buckets"):
        check(field in hist, f"sim/step_seconds histogram missing {field!r}")
    check(hist["count"] > 0, "sim/step_seconds histogram is empty")
    print(f"validate_metrics: metrics OK: {len(counters)} counters, "
          f"{len(doc['gauges'])} gauges, {len(doc['histograms'])} histograms, "
          f"{len(kernels)} kernels")


def main(argv):
    mode = None
    args = []
    for a in argv[1:]:
        if a in ("--help", "-h"):
            print(__doc__)
            return
        if a in ("--overlap", "--serial", "--service", "--summary"):
            if mode is not None:
                usage_fail("pass at most one of "
                           "--overlap/--serial/--service/--summary")
            mode = a
        elif a.startswith("-"):
            usage_fail(f"unknown flag {a!r} (see --help)")
        else:
            args.append(a)
    if not args:
        usage_fail("usage: validate_trace.py "
                   "[--overlap|--serial|--service|--summary] "
                   "TRACE.json [METRICS.json] (see --help for exit codes)")
    if mode == "--summary":
        summarize(args[0])
        return
    if mode == "--service":
        validate_service(args[0])
        if len(args) > 1:
            validate_service_metrics(args[1])
        return
    events = validate_trace(args[0])
    if mode == "--overlap":
        check_overlap_mode(events)
    elif mode == "--serial":
        check_serial_mode(events)
    if len(args) > 1:
        validate_metrics(args[1])


if __name__ == "__main__":
    main(sys.argv)
